"""The analysis engine: collect files, run checkers, fold suppressions.

:func:`analyze_paths` is the CLI's workhorse; :func:`analyze_source` /
:func:`analyze_sources` check in-memory snippets (the fixture tests'
entry points).  All return findings **after** inline suppressions; the
baseline is applied by the caller (:mod:`repro.analysis.cli`) because
only it knows whether this run is writing or enforcing the baseline.

Two phases per run:

1. **per-file** — every file-scoped checker over every file.  With
   ``jobs > 1`` this phase fans out across a process pool: workers
   return plain picklable ``(findings, suppressed, module summary)``
   triples, and because results are merged in submission order and
   findings are sorted at the end, output is byte-identical to a
   single-process run.
2. **project** — :class:`~repro.analysis.model.ProjectChecker` rules
   run once in the parent over the :class:`~repro.analysis.graph.
   symbols.ProjectIndex` assembled from the workers' summaries.
   Inline suppressions apply through the summaries' recorded tables.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .graph.symbols import ModuleSummary, ProjectIndex, summarize
from .model import Checker, Finding, all_checkers, checkers_for_rules
from .source import SourceFile

#: Rule id for files the engine cannot parse (not a registered checker:
#: it has no "check" to run, and suppressing it would hide brokenness).
PARSE_ERROR_RULE = "parse-error"

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

#: Below this many files the pool costs more than it saves.
MIN_FILES_FOR_POOL = 8


@dataclass
class AnalysisResult:
    """Everything one engine run learned."""

    findings: List[Finding] = field(default_factory=list)  # post-suppression
    suppressed: int = 0  # waived by inline `# repro: disable=`
    files: int = 0  # files actually scanned

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings)


def iter_python_files(paths: Sequence[Path], root: Path) -> Iterable[Path]:
    """Every ``.py`` file under ``paths``, deterministic order, deduped."""
    seen = set()
    for raw in paths:
        path = raw if raw.is_absolute() else root / raw
        if not path.exists():
            raise ConfigError(f"no such path: {raw}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(
                    part in _SKIPPED_DIRS or part.startswith(".")
                    for part in p.relative_to(path).parts
                )
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _split_checkers(
    checkers: Sequence[Checker],
) -> Tuple[List[Checker], List[Checker]]:
    """``(file_checkers, project_checkers)`` preserving order."""
    file_checkers = [c for c in checkers if not c.project]
    project_checkers = [c for c in checkers if c.project]
    return file_checkers, project_checkers


def check_source(
    source: SourceFile, checkers: Optional[Sequence[Checker]] = None
) -> AnalysisResult:
    """Run file-scoped ``checkers`` over one file, folding suppressions.

    Project checkers in ``checkers`` are skipped — they need the whole
    index and run in :func:`analyze_paths` / :func:`analyze_sources`.
    """
    selected, _ = _split_checkers(
        list(checkers) if checkers is not None else all_checkers()
    )
    result = AnalysisResult(files=1)
    try:
        source.tree
    except SyntaxError as error:
        line = error.lineno if error.lineno is not None else 1
        result.findings.append(
            Finding(
                path=source.rel,
                line=line,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            )
        )
        return result
    for checker in selected:
        if not checker.applies(source):
            continue
        for finding in checker.check(source):
            if source.suppressed(finding.rule, finding.line):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    return result


def _summarize_safe(source: SourceFile) -> Optional[ModuleSummary]:
    try:
        return summarize(source)
    except SyntaxError:
        return None  # already reported as a parse-error finding


def _run_project_checkers(
    project_checkers: Sequence[Checker],
    summaries: List[ModuleSummary],
    total: AnalysisResult,
) -> None:
    """Phase 2: whole-program rules over the assembled index."""
    if not project_checkers:
        return
    index = ProjectIndex(summaries)
    for checker in project_checkers:
        for finding in checker.check_project(index):
            if index.suppressed(finding.path, finding.rule, finding.line):
                total.suppressed += 1
            else:
                total.findings.append(finding)


def _scan_worker(
    task: Tuple[str, str, Optional[List[str]], bool]
) -> Tuple[List[Finding], int, Optional[ModuleSummary]]:
    """One file scan, shaped for ``ProcessPoolExecutor.map``.

    Takes only picklable primitives (checker instances may not cross
    the process boundary — rule ids are re-resolved from the registry
    the worker builds by import) and returns only picklable results.
    """
    path_str, rel, rules, need_summary = task
    source = SourceFile.read(Path(path_str), rel)
    selected = checkers_for_rules(rules) if rules is not None else None
    result = check_source(source, selected)
    summary = _summarize_safe(source) if need_summary else None
    return result.findings, result.suppressed, summary


def analyze_source(
    text: str,
    rel: str = "src/repro/snippet.py",
    checkers: Optional[Sequence[Checker]] = None,
) -> AnalysisResult:
    """Analyze an in-memory snippet as if it lived at ``rel``."""
    return analyze_sources([(rel, text)], checkers=checkers)


def analyze_sources(
    items: Sequence[Tuple[str, str]],
    checkers: Optional[Sequence[Checker]] = None,
) -> AnalysisResult:
    """Analyze ``(rel, text)`` snippets as one multi-file project.

    The fixture-test entry point for whole-program rules: lock-order
    hazards only exist *between* files, so the suite hands this a
    little synthetic tree.
    """
    selected = list(checkers) if checkers is not None else all_checkers()
    file_checkers, project_checkers = _split_checkers(selected)
    total = AnalysisResult()
    summaries: List[ModuleSummary] = []
    for rel, text in items:
        source = SourceFile(rel, text)
        result = check_source(source, file_checkers)
        total.findings.extend(result.findings)
        total.suppressed += result.suppressed
        total.files += 1
        if project_checkers:
            summary = _summarize_safe(source)
            if summary is not None:
                summaries.append(summary)
    _run_project_checkers(project_checkers, summaries, total)
    total.findings.sort()
    return total


def analyze_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    checkers: Optional[Sequence[Checker]] = None,
    jobs: int = 1,
) -> AnalysisResult:
    """Analyze every Python file under ``paths`` (repo-relative).

    ``jobs`` > 1 fans the per-file phase out across a process pool
    (skipped below :data:`MIN_FILES_FOR_POOL` files, where fork/import
    overhead dominates).  Findings are merged in submission order and
    sorted, so output does not depend on ``jobs``.
    """
    base = (root or Path.cwd()).resolve()
    selected = list(checkers) if checkers is not None else all_checkers()
    _, project_checkers = _split_checkers(selected)
    rules = [c.rule for c in selected] if checkers is not None else None
    need_summary = bool(project_checkers)
    tasks = [
        (str(path), _relative(path, base), rules, need_summary)
        for path in iter_python_files([Path(p) for p in paths], base)
    ]
    effective_jobs = max(1, jobs)
    if effective_jobs > 1 and len(tasks) >= MIN_FILES_FOR_POOL:
        chunk = max(1, len(tasks) // (effective_jobs * 4))
        with ProcessPoolExecutor(max_workers=effective_jobs) as pool:
            outcomes = list(pool.map(_scan_worker, tasks, chunksize=chunk))
    else:
        outcomes = [_scan_worker(task) for task in tasks]
    total = AnalysisResult()
    summaries: List[ModuleSummary] = []
    for findings, suppressed, summary in outcomes:
        total.findings.extend(findings)
        total.suppressed += suppressed
        total.files += 1
        if summary is not None:
            summaries.append(summary)
    _run_project_checkers(project_checkers, summaries, total)
    total.findings.sort()
    return total
