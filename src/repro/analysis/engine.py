"""The analysis engine: collect files, run checkers, fold suppressions.

:func:`analyze_paths` is the CLI's workhorse; :func:`analyze_source`
checks one in-memory snippet (the fixture tests' entry point).  Both
return findings **after** inline suppressions; the baseline is applied
by the caller (:mod:`repro.analysis.cli`) because only it knows
whether this run is writing or enforcing the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..errors import ConfigError
from .model import Checker, Finding, all_checkers
from .source import SourceFile

#: Rule id for files the engine cannot parse (not a registered checker:
#: it has no "check" to run, and suppressing it would hide brokenness).
PARSE_ERROR_RULE = "parse-error"

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass
class AnalysisResult:
    """Everything one engine run learned."""

    findings: List[Finding] = field(default_factory=list)  # post-suppression
    suppressed: int = 0  # waived by inline `# repro: disable=`
    files: int = 0  # files actually scanned

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings)


def iter_python_files(paths: Sequence[Path], root: Path) -> Iterable[Path]:
    """Every ``.py`` file under ``paths``, deterministic order, deduped."""
    seen = set()
    for raw in paths:
        path = raw if raw.is_absolute() else root / raw
        if not path.exists():
            raise ConfigError(f"no such path: {raw}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not any(
                    part in _SKIPPED_DIRS or part.startswith(".")
                    for part in p.relative_to(path).parts
                )
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_source(
    source: SourceFile, checkers: Optional[Sequence[Checker]] = None
) -> AnalysisResult:
    """Run ``checkers`` over one source file, folding suppressions."""
    selected = list(checkers) if checkers is not None else all_checkers()
    result = AnalysisResult(files=1)
    try:
        source.tree
    except SyntaxError as error:
        line = error.lineno if error.lineno is not None else 1
        result.findings.append(
            Finding(
                path=source.rel,
                line=line,
                rule=PARSE_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            )
        )
        return result
    for checker in selected:
        if not checker.applies(source):
            continue
        for finding in checker.check(source):
            if source.suppressed(finding.rule, finding.line):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    return result


def analyze_source(
    text: str,
    rel: str = "src/repro/snippet.py",
    checkers: Optional[Sequence[Checker]] = None,
) -> AnalysisResult:
    """Analyze an in-memory snippet as if it lived at ``rel``."""
    return check_source(SourceFile(rel, text), checkers)


def analyze_paths(
    paths: Sequence[str],
    root: Optional[Path] = None,
    checkers: Optional[Sequence[Checker]] = None,
) -> AnalysisResult:
    """Analyze every Python file under ``paths`` (repo-relative)."""
    base = (root or Path.cwd()).resolve()
    selected = list(checkers) if checkers is not None else all_checkers()
    total = AnalysisResult()
    for path in iter_python_files([Path(p) for p in paths], base):
        source = SourceFile.read(path, _relative(path, base))
        result = check_source(source, selected)
        total.findings.extend(result.findings)
        total.suppressed += result.suppressed
        total.files += 1
    total.findings.sort()
    return total
