"""Command-line front end: ``python -m repro.analysis`` / ``rage lint``.

Exit codes follow the CLI contract: 0 clean, 1 findings, 2 usage or
configuration errors.  ``--json`` emits a machine-readable report (CI
uploads it as an artifact); ``--write-baseline`` records the current
findings so legacy debt ratchets down instead of blocking.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigError, RageError
from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import AnalysisResult, analyze_paths
from .model import all_checkers, checkers_for_rules

#: Scanned when no paths are given — the self-hosting default.
DEFAULT_PATHS = ("src", "tests", "benchmarks")

#: Baseline location used when ``--baseline`` is not passed and the
#: file exists.  Absent file = empty baseline (the healthy state).
DEFAULT_BASELINE = ".repro-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flag definitions for ``rage lint`` and ``__main__``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to scan (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit the report as JSON instead of human-readable lines",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the report (in the selected format) to FILE — "
        "CI uploads this as an artifact even when the run fails",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file waiving known legacy findings "
        f"(default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into the baseline file and exit 0 "
        "(the ratchet: rerun after fixing to shrink it)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE_ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the per-file scan (default: all "
        "CPUs; 1 disables the pool; output is identical either way)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def _render_human(
    result: AnalysisResult, waived: int, reported: List
) -> str:
    lines = [finding.render() for finding in reported]
    summary = (
        f"{len(reported)} finding{'s' if len(reported) != 1 else ''} "
        f"across {result.files} files "
        f"({result.suppressed} inline-suppressed, {waived} baselined)"
    )
    if not reported:
        summary = (
            f"clean: 0 findings across {result.files} files "
            f"({result.suppressed} inline-suppressed, {waived} baselined)"
        )
    lines.append(summary)
    return "\n".join(lines)


def _render_json(result: AnalysisResult, waived: int, reported: List) -> str:
    payload = {
        "version": 1,
        "files": result.files,
        "counts": {
            "reported": len(reported),
            "suppressed": result.suppressed,
            "baselined": waived,
        },
        "findings": [finding.to_dict() for finding in reported],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit status."""
    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.rule}: {checker.description}")
        return 0
    root = Path(args.root).resolve() if args.root else Path.cwd()
    checkers = (
        checkers_for_rules(args.rule) if args.rule else None
    )
    jobs = args.jobs if args.jobs and args.jobs > 0 else (os.cpu_count() or 1)
    result = analyze_paths(args.paths, root=root, checkers=checkers, jobs=jobs)

    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )
    if args.write_baseline:
        # A renamed file resets its (path, rule) count to zero while
        # the stale entry would silently keep waiving findings at the
        # old path — call the rot out and drop it.
        stale: List[str] = []
        if baseline_path.is_file():
            stale = sorted(
                rel
                for rel in load_baseline(baseline_path)
                if not (root / rel).exists()
            )
        write_baseline(baseline_path, result.sorted_findings())
        for rel in stale:
            print(
                f"warning: pruned baseline entry for {rel} — "
                "the file no longer exists (renamed or deleted)",
                file=sys.stderr,
            )
        print(
            f"baseline written to {baseline_path} "
            f"({len(result.findings)} findings waived"
            + (f", {len(stale)} stale entries pruned" if stale else "")
            + ")"
        )
        return 0
    if baseline_path.is_file():
        baseline = load_baseline(baseline_path)
    elif args.baseline:
        raise ConfigError(f"no baseline file at {baseline_path}")
    else:
        baseline = {}
    reported, waived = apply_baseline(result.sorted_findings(), baseline)

    rendered = (
        _render_json(result, waived, reported)
        if args.json_output
        else _render_human(result, waived, reported)
    )
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return 1 if reported else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-native static analysis: concurrency, async "
        "hygiene, error taxonomy, hermeticity and determinism rules.",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except RageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
