"""Baseline files: ratchet legacy findings down instead of blocking.

A baseline waives a *count* of findings per ``(path, rule)`` — never
specific lines, which drift on every edit.  Running with a baseline:

* up to the baselined count of findings in each ``(path, rule)`` group
  is waived (earliest lines first);
* every finding beyond the count is reported — new violations in an
  old file still fail;
* a file that gets *cleaner* does not bank credit: rewrite the
  baseline (``--write-baseline``) to ratchet the allowance down.

The file is deterministic JSON (sorted keys) so diffs review cleanly::

    {"version": 1, "counts": {"src/repro/llm/x.py": {"lock-discipline": 2}}}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from ..errors import ConfigError
from .model import Finding

_VERSION = 1


def load_baseline(path: Path) -> Dict[str, Dict[str, int]]:
    """Parse a baseline file into ``{path: {rule: count}}``."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigError(f"cannot read baseline {path}: {error}") from error
    except ValueError as error:
        raise ConfigError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ConfigError(
            f"baseline {path} has unsupported schema "
            f"(want {{'version': {_VERSION}, 'counts': ...}})"
        )
    counts = payload.get("counts", {})
    if not isinstance(counts, dict):
        raise ConfigError(f"baseline {path}: 'counts' must be an object")
    result: Dict[str, Dict[str, int]] = {}
    for rel, rules in counts.items():
        if not isinstance(rules, dict):
            raise ConfigError(f"baseline {path}: entry {rel!r} must be an object")
        result[rel] = {
            str(rule): int(count) for rule, count in rules.items() if int(count) > 0
        }
    return result


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write the baseline that waives exactly ``findings``."""
    counts: Dict[str, Dict[str, int]] = {}
    for finding in findings:
        per_file = counts.setdefault(finding.path, {})
        per_file[finding.rule] = per_file.get(finding.rule, 0) + 1
    payload = {"version": _VERSION, "counts": counts}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, Dict[str, int]]
) -> Tuple[List[Finding], int]:
    """``(reported, waived_count)`` after waiving baselined findings."""
    budget = {
        (rel, rule): count
        for rel, rules in baseline.items()
        for rule, count in rules.items()
    }
    reported: List[Finding] = []
    waived = 0
    for finding in sorted(findings):
        key = (finding.path, finding.rule)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            waived += 1
        else:
            reported.append(finding)
    return reported, waived
