"""Runtime lock-order watchdog: the dynamic half of ``lock-order``.

Opt-in instrumentation (``RAGE_LOCK_WATCHDOG=1``, wired through
``tests/conftest.py``) that patches ``threading.Lock``/``RLock`` with
proxy factories.  Every lock created *by project code* gets a stable
creation-site id (``path:line``); each thread tracks the stack of
instrumented locks it holds; every acquisition while already holding
another lock records an order edge and asks
:func:`repro.analysis.graph.locks.find_cycle_closing` — the same cycle
machinery the static checker uses — whether the new edge closes a
cycle.  On an inversion the watchdog *raises* instead of letting the
threads park forever, so the test run fails loudly with both
acquisition stacks in hand instead of hanging CI.

The static graph reasons over declared locks; this layer observes the
locks the suite actually exercises.  They share one invariant (the
acquisition-order graph is acyclic) and one detector, so a topology
the static pass cannot see (locks reached through dynamic dispatch it
refused to guess at) still gets checked dynamically.

Design notes
------------
* Lock *instances* from the same creation site share an id — a
  per-request latch built in a loop is one logical lock for ordering
  purposes.  Same-site edges are therefore skipped (no order exists
  between siblings); re-acquiring the *same instance* of a
  non-reentrant ``Lock`` is reported as a self-deadlock instead of
  blocking forever.
* Locks created outside the configured roots (stdlib internals,
  ``concurrent.futures`` plumbing) are returned un-instrumented: they
  cannot contribute edges, which keeps overhead and noise near zero.
* The proxies expose only the lock protocol (``acquire`` / ``release``
  / ``__enter__`` / ``__exit__`` / ``locked``).  ``threading.
  Condition`` over a proxied lock then falls back to its default
  ``_release_save``/``_acquire_restore``/``_is_owned`` paths, which
  route through the proxy — condition waits stay correctly tracked.
"""

from __future__ import annotations

import threading
import traceback
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .graph.locks import find_cycle_closing

#: Captured before any patching so the watchdog's own mutex — and any
#: other internal lock — is never instrumented.
_ORIGINAL_LOCK = threading.Lock
_ORIGINAL_RLOCK = threading.RLock


class LockOrderViolation(RuntimeError):
    """An acquisition closed a cycle in the runtime order graph."""


def _creation_site() -> Tuple[str, int]:
    """``(path, line)`` of the project frame that created the lock.

    Walks outward past this module and ``threading.py`` (so a
    ``Condition()``'s internal ``RLock()`` is attributed to whoever
    built the condition).
    """
    here = str(Path(__file__))
    threading_file = str(Path(threading.__file__))
    for frame in reversed(traceback.extract_stack()):
        if frame.filename in (here, threading_file):
            continue
        return frame.filename, frame.lineno or 0
    return "<unknown>", 0


class LockWatchdog:
    """Shared registry: per-thread held stacks, order edges, violations."""

    def __init__(
        self,
        roots: Tuple[str, ...] = (),
        raise_on_cycle: bool = True,
    ) -> None:
        if not roots:
            package_root = Path(__file__).resolve().parents[1]  # src/repro
            roots = (str(package_root),)
        self.roots = tuple(str(Path(root).resolve()) for root in roots)
        self.raise_on_cycle = raise_on_cycle
        self._mutex = _ORIGINAL_LOCK()
        self._held = threading.local()  # per-thread [(site, instance id)]
        #: (outer site, inner site) -> first witness description
        self.edges: Dict[Tuple[str, str], str] = {}
        self.violations: List[Dict[str, object]] = []
        self.sites: Dict[str, str] = {}  # site id -> kind

    # -- lock construction --------------------------------------------------

    def tracks(self, path: str) -> bool:
        """Whether locks created at ``path`` are instrumented."""
        try:
            resolved = str(Path(path).resolve())
        except OSError:
            return False
        return any(resolved.startswith(root) for root in self.roots)

    def make_lock(self):
        """Patched ``threading.Lock`` — proxy when project code calls."""
        path, line = _creation_site()
        if not self.tracks(path):
            return _ORIGINAL_LOCK()
        return _LockProxy(self, _ORIGINAL_LOCK(), self._site_id(path, line, "lock"))

    def make_rlock(self):
        """Patched ``threading.RLock`` — proxy when project code calls."""
        path, line = _creation_site()
        if not self.tracks(path):
            return _ORIGINAL_RLOCK()
        return _LockProxy(
            self, _ORIGINAL_RLOCK(), self._site_id(path, line, "rlock"), reentrant=True
        )

    def _site_id(self, path: str, line: int, kind: str) -> str:
        site = f"{path}:{line}"
        with self._mutex:
            self.sites[site] = kind
        return site

    # -- acquisition protocol -----------------------------------------------

    def _stack(self) -> List[Tuple[str, int]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def before_acquire(self, site: str, instance: int, reentrant: bool) -> None:
        """Record edges and check for a closing cycle *before* blocking."""
        stack = self._stack()
        if not stack:
            return
        if not reentrant and any(
            held_instance == instance for _, held_instance in stack
        ):
            self._violate(
                site,
                (site,),
                "re-acquiring a non-reentrant Lock already held by this "
                "thread — guaranteed self-deadlock",
            )
            return
        thread = threading.current_thread().name
        with self._mutex:
            for held_site, _ in stack:
                if held_site == site:
                    continue  # sibling instances: no order between them
                # Path site -> ... -> held_site; the acquisition being
                # attempted is the edge held_site -> site that closes it.
                cycle = find_cycle_closing(self.edges.keys(), held_site, site)
                if cycle is not None:
                    self._record_violation(site, cycle, thread)
                    if self.raise_on_cycle:
                        raise LockOrderViolation(self._describe_last())
                self.edges.setdefault(
                    (held_site, site),
                    f"thread {thread!r} acquired {site} while holding {held_site}",
                )

    def after_acquire(self, site: str, instance: int) -> None:
        self._stack().append((site, instance))

    def after_release(self, site: str, instance: int) -> None:
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == (site, instance):
                del stack[position]
                return

    # -- violations ----------------------------------------------------------

    def _violate(self, site: str, cycle: Tuple[str, ...], detail: str) -> None:
        with self._mutex:
            self._record_violation(site, cycle, threading.current_thread().name, detail)
        if self.raise_on_cycle:
            raise LockOrderViolation(self._describe_last())

    def _record_violation(
        self,
        site: str,
        cycle: Tuple[str, ...],
        thread: str,
        detail: Optional[str] = None,
    ) -> None:
        witnesses = [
            self.edges[(outer, inner)]
            for outer, inner in zip(cycle, cycle[1:] + cycle[:1])
            if (outer, inner) in self.edges
        ]
        self.violations.append(
            {
                "acquiring": site,
                "thread": thread,
                "cycle": list(cycle),
                "witnesses": witnesses,
                "detail": detail
                or "acquisition closes a cycle in the lock order graph — "
                "threads taking these locks in opposite order deadlock",
            }
        )

    def _describe_last(self) -> str:
        violation = self.violations[-1]
        cycle = " -> ".join(list(violation["cycle"]) + [violation["cycle"][0]])
        lines = [
            f"lock-order violation in thread {violation['thread']!r}: "
            f"acquiring {violation['acquiring']} closes cycle [{cycle}]",
            str(violation["detail"]),
        ]
        lines.extend(f"  witness: {witness}" for witness in violation["witnesses"])
        return "\n".join(lines)

    def report(self) -> Dict[str, object]:
        """JSON-ready digest: sites, observed edges, violations."""
        with self._mutex:
            return {
                "version": 1,
                "sites": dict(sorted(self.sites.items())),
                "edges": [
                    {"outer": outer, "inner": inner, "witness": witness}
                    for (outer, inner), witness in sorted(self.edges.items())
                ],
                "violations": list(self.violations),
            }


class _LockProxy:
    """Instrumented lock: the lock protocol plus watchdog bookkeeping."""

    def __init__(self, watchdog, inner, site, reentrant=False):
        self._watchdog = watchdog
        self._inner = inner
        self._site = site
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            self._watchdog.before_acquire(
                self._site, id(self), self._reentrant
            )
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watchdog.after_acquire(self._site, id(self))
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._watchdog.after_release(self._site, id(self))

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<watchdog {self._inner!r} site={self._site}>"


#: The active watchdog while installed, for uninstall() and reports.
_INSTALLED: Optional[LockWatchdog] = None


def install(watchdog: Optional[LockWatchdog] = None) -> LockWatchdog:
    """Patch ``threading.Lock``/``RLock`` with instrumented factories.

    Idempotent: a second install returns the active watchdog.
    """
    global _INSTALLED
    if _INSTALLED is not None:
        return _INSTALLED
    _INSTALLED = watchdog if watchdog is not None else LockWatchdog()
    threading.Lock = _INSTALLED.make_lock  # type: ignore[assignment]
    threading.RLock = _INSTALLED.make_rlock  # type: ignore[assignment]
    return _INSTALLED


def uninstall() -> None:
    """Restore the original lock factories."""
    global _INSTALLED
    threading.Lock = _ORIGINAL_LOCK  # type: ignore[assignment]
    threading.RLock = _ORIGINAL_RLOCK  # type: ignore[assignment]
    _INSTALLED = None


def installed() -> Optional[LockWatchdog]:
    """The active watchdog, if any."""
    return _INSTALLED
