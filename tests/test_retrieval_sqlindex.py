"""Persistent SQLite index: incremental indexing, warm restarts,
concurrency, corruption, and hybrid scoring over it."""

import sqlite3
import threading

import pytest

from repro.errors import (
    ConfigError,
    EmptyIndexError,
    RetrievalError,
    UnknownDocumentError,
)
from repro.retrieval import (
    DB_NAME,
    BM25Scorer,
    Document,
    InvertedIndex,
    Searcher,
    SqliteIndex,
    SqliteSearcher,
    make_retrieval_scorer,
    open_index,
)
from repro.retrieval.sqlindex import SCHEMA_VERSION, content_hash
from repro.textproc import Tokenizer


@pytest.fixture()
def docs(tiny_corpus):
    return list(tiny_corpus)


@pytest.fixture()
def index(tmp_path, docs):
    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
        yield ix


# ---------------------------------------------------------------------------
# Protocol parity with the in-memory index


def test_read_protocol_matches_inverted_index(index, docs):
    mem = InvertedIndex.build(docs)
    assert len(index) == len(mem)
    assert sorted(index.vocabulary()) == sorted(mem.vocabulary())
    for doc in docs:
        assert doc.doc_id in index
        assert index.doc_length(doc.doc_id) == mem.doc_length(doc.doc_id)
        assert index.document(doc.doc_id) == mem.document(doc.doc_id)
    for term in mem.vocabulary():
        assert index.document_frequency(term) == mem.document_frequency(term)
        assert sorted(index.postings(term), key=lambda p: p.doc_id) == sorted(
            mem.postings(term), key=lambda p: p.doc_id
        )
    assert index.stats == mem.stats
    assert index.term_frequency("quick", "d4") == mem.term_frequency("quick", "d4")
    assert index.term_frequency("quick", "d3") == 0


def test_bm25_rankings_match_inverted_index(index, docs):
    mem_result = Searcher(InvertedIndex.build(docs), scorer=BM25Scorer()).search(
        "quick fox", k=4
    )
    sql_result = SqliteSearcher(index, scorer=BM25Scorer()).search("quick fox", k=4)
    assert [
        (s.document.doc_id, s.rank, s.score) for s in sql_result.sources
    ] == [(s.document.doc_id, s.rank, s.score) for s in mem_result.sources]


def test_documents_in_first_indexed_order(index, docs):
    assert [d.doc_id for d in index.documents()] == [d.doc_id for d in docs]
    assert index.doc_ids() == [d.doc_id for d in docs]


def test_missing_document_raises(index):
    with pytest.raises(UnknownDocumentError):
        index.document("missing")
    with pytest.raises(UnknownDocumentError):
        index.doc_length("missing")


# ---------------------------------------------------------------------------
# Incremental indexing: add / update / remove / sync


def test_add_reports_outcomes(tmp_path, docs):
    with open_index(tmp_path / "ix") as ix:
        assert ix.add(docs[0]) == "added"
        assert ix.add(docs[0]) == "unchanged"
        changed = Document(doc_id=docs[0].doc_id, text="entirely new text")
        assert ix.add(changed) == "updated"
        assert ix.document(docs[0].doc_id).text == "entirely new text"


def test_unchanged_readd_is_a_noop(index, docs):
    before = index.counters["doc_tokenizations"]
    assert index.add_many(docs) == {"added": 0, "updated": 0, "unchanged": 4}
    assert index.counters["doc_tokenizations"] == before
    assert index.counters["unchanged"] == 4


def test_update_replaces_postings_atomically(index):
    changed = Document(doc_id="d1", text="zebra stripes")
    assert index.update(changed) == "updated"
    # The old content's postings are fully withdrawn.
    assert all(p.doc_id != "d1" for p in index.postings("lazi"))
    assert index.document_frequency("zebra") == 1
    assert index.doc_length("d1") == 2


def test_update_requires_existing_document(index):
    with pytest.raises(UnknownDocumentError):
        index.update(Document(doc_id="missing", text="x"))


def test_remove_withdraws_every_contribution(tmp_path, docs):
    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
        ix.remove("d4")
        rebuilt = InvertedIndex.build([d for d in docs if d.doc_id != "d4"])
        assert ix.stats == rebuilt.stats
        assert sorted(ix.vocabulary()) == sorted(rebuilt.vocabulary())
        assert "d4" not in ix
        with pytest.raises(UnknownDocumentError):
            ix.remove("d4")


def test_sync_mirrors_a_corpus(tmp_path, docs):
    with open_index(tmp_path / "ix") as ix:
        assert ix.sync(docs)["added"] == 4
        smaller = docs[:2] + [Document(doc_id="d3", text="rewritten")]
        outcome = ix.sync(smaller, remove_missing=True)
        assert outcome == {"added": 0, "updated": 1, "unchanged": 2, "removed": 1}
        assert sorted(ix.doc_ids()) == ["d1", "d2", "d3"]


def test_content_hash_covers_title_and_metadata():
    base = Document(doc_id="d", text="x")
    assert content_hash(base) == content_hash(Document(doc_id="d", text="x"))
    assert content_hash(base) != content_hash(Document(doc_id="d", text="x", title="t"))
    assert content_hash(base) != content_hash(
        Document(doc_id="d", text="x", metadata={"y": "1"})
    )


# ---------------------------------------------------------------------------
# Warm restarts


def test_warm_reopen_serves_identical_bytes_with_zero_tokenization(tmp_path, docs):
    query, k = "quick brown fox", 4
    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
        cold = SqliteSearcher(ix, scorer=BM25Scorer()).search(query, k=k)
    with open_index(tmp_path / "ix") as warm_ix:
        assert warm_ix.sync(docs) == {
            "added": 0, "updated": 0, "unchanged": 4, "removed": 0,
        }
        warm = SqliteSearcher(warm_ix, scorer=BM25Scorer()).search(query, k=k)
        # Zero re-tokenization of unchanged documents on the warm path.
        assert warm_ix.counters["doc_tokenizations"] == 0
    assert [
        (s.document.doc_id, s.rank, s.score) for s in warm.sources
    ] == [(s.document.doc_id, s.rank, s.score) for s in cold.sources]


def test_reopen_adopts_stored_tokenizer(tmp_path):
    tok = Tokenizer(stem=False, remove_stopwords=False)
    with open_index(tmp_path / "ix", tokenizer=tok) as ix:
        ix.add(Document(doc_id="d", text="The Running Foxes"))
    with open_index(tmp_path / "ix") as ix:
        assert ix.tokenizer.stem is False
        assert ix.tokenizer.remove_stopwords is False
        assert ix.document_frequency("running") == 1  # not stemmed


def test_reopen_with_conflicting_tokenizer_rejected(tmp_path):
    with open_index(tmp_path / "ix") as ix:
        ix.add(Document(doc_id="d", text="hello world"))
    with pytest.raises(RetrievalError, match="analyzer"):
        open_index(tmp_path / "ix", tokenizer=Tokenizer(stem=False))


def test_schema_version_mismatch_rejected(tmp_path):
    with open_index(tmp_path / "ix") as ix:
        ix.add(Document(doc_id="d", text="hello"))
        path = ix.path
    conn = sqlite3.connect(str(path))
    conn.execute(
        "UPDATE meta SET value = ? WHERE key = 'schema_version'",
        (str(SCHEMA_VERSION + 1),),
    )
    conn.commit()
    conn.close()
    with pytest.raises(RetrievalError, match="schema version"):
        open_index(tmp_path / "ix")


# ---------------------------------------------------------------------------
# Corruption and lifecycle


def test_non_sqlite_garbage_raises_retrieval_error(tmp_path):
    root = tmp_path / "ix"
    root.mkdir()
    (root / DB_NAME).write_bytes(b"this is definitely not a database" * 64)
    with pytest.raises(RetrievalError):
        open_index(root)


def test_truncated_database_raises_retrieval_error(tmp_path, docs):
    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
        path = ix.path
    # Keep the SQLite header (so connect succeeds) but shear off the
    # b-tree pages: reads must surface RetrievalError, never a raw
    # sqlite3 traceback.
    blob = path.read_bytes()
    path.write_bytes(blob[:120])
    with pytest.raises(RetrievalError):
        with open_index(tmp_path / "ix") as ix:
            ix.postings("quick")


def test_index_dir_collision_with_file(tmp_path):
    target = tmp_path / "not-a-dir"
    target.write_text("occupied")
    with pytest.raises(ConfigError):
        open_index(target)


def test_closed_index_rejects_use(tmp_path, docs):
    ix = open_index(tmp_path / "ix")
    ix.add(docs[0])
    ix.close()
    with pytest.raises(RetrievalError, match="closed"):
        ix.postings("quick")


def test_empty_index_search_raises(tmp_path):
    with open_index(tmp_path / "ix") as ix:
        with pytest.raises(EmptyIndexError):
            SqliteSearcher(ix, scorer=BM25Scorer()).search("anything")


# ---------------------------------------------------------------------------
# Concurrency: WAL readers vs the single writer


def test_concurrent_readers_during_writes(tmp_path, docs):
    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
        searcher = SqliteSearcher(ix, scorer=BM25Scorer())
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    result = searcher.search("quick fox", k=3)
                    assert result.sources  # always a consistent ranking
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for i in range(25):
                ix.add(Document(doc_id=f"extra-{i}", text=f"filler body {i}"))
            for i in range(25):
                ix.remove(f"extra-{i}")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors
        assert len(ix) == len(docs)


def test_snapshot_isolates_a_search_from_commits(tmp_path, docs):
    """Inside one snapshot, reads see one database version even after
    another connection (here: a second handle) commits."""
    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
        writer = open_index(tmp_path / "ix")
        try:
            with ix.snapshot():
                before = ix.document_frequency("quick")
                writer.add(Document(doc_id="d9", text="quick quick"))
                assert ix.document_frequency("quick") == before
            # A fresh snapshot observes the external commit.
            with ix.snapshot():
                assert ix.document_frequency("quick") == before + 1
        finally:
            writer.close()


def test_cross_handle_cache_invalidation(tmp_path, docs):
    """A long-lived reader handle notices another handle's commits."""
    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
        assert len(ix) == 4
        other = open_index(tmp_path / "ix")
        try:
            other.add(Document(doc_id="d5", text="a fifth document"))
        finally:
            other.close()
        assert len(ix) == 5
        assert ix.doc_length("d5") == 2  # "a" is a stopword: fifth, document


# ---------------------------------------------------------------------------
# Dense vectors and hybrid scoring over the persistent index


def test_dense_vectors_persist(tmp_path, docs):
    with open_index(tmp_path / "ix", dense=True) as ix:
        ix.add_many(docs)
        cold = ix.dense_view().scores("quick brown fox")
    with open_index(tmp_path / "ix") as warm:
        assert warm.embedder is not None  # reconstructed from stored meta
        assert warm.dense_view().scores("quick brown fox") == cold


def test_dense_view_requires_vectors(index):
    with pytest.raises(RetrievalError, match="dense"):
        index.dense_view()


def test_embedder_on_sparse_index_rejected(tmp_path, docs):
    from repro.retrieval import HashedEmbedder

    with open_index(tmp_path / "ix") as ix:
        ix.add_many(docs)
    with pytest.raises(RetrievalError, match="without dense vectors"):
        open_index(tmp_path / "ix", embedder=HashedEmbedder())


def test_embedder_dimension_mismatch_rejected(tmp_path, docs):
    from repro.retrieval import HashedEmbedder

    with open_index(tmp_path / "ix", dense=True) as ix:
        ix.add_many(docs)
    with pytest.raises(RetrievalError, match="dimensional"):
        open_index(tmp_path / "ix", embedder=HashedEmbedder(dimensions=8))


@pytest.mark.parametrize("mode,fusion", [
    ("bm25", "minmax"),
    ("dense", "minmax"),
    ("hybrid", "minmax"),
    ("hybrid", "rrf"),
])
def test_retrieval_modes_rank_deterministically(tmp_path, docs, mode, fusion):
    with open_index(tmp_path / "ix", dense=True) as ix:
        ix.add_many(docs)
        searcher = SqliteSearcher(
            ix, scorer=make_retrieval_scorer(ix, mode=mode, fusion=fusion)
        )
        first = searcher.search("quick fox", k=4)
        second = searcher.search("quick fox", k=4)
        assert [
            (s.document.doc_id, s.score) for s in first.sources
        ] == [(s.document.doc_id, s.score) for s in second.sources]
        assert first.sources  # every mode retrieves something here


def test_make_retrieval_scorer_validates_names(index):
    with pytest.raises(ConfigError):
        make_retrieval_scorer(index, mode="nope")
    with pytest.raises(ConfigError):
        make_retrieval_scorer(index, mode="hybrid", fusion="nope")


# ---------------------------------------------------------------------------
# Odds and ends


def test_size_bytes_grows_with_content(tmp_path, docs):
    with open_index(tmp_path / "ix") as ix:
        empty = ix.size_bytes()
        ix.add_many(docs)
        assert ix.size_bytes() > 0
        assert ix.size_bytes() >= empty


def test_search_counter_increments(index):
    searcher = SqliteSearcher(index, scorer=BM25Scorer())
    searcher.search("quick", k=2)
    searcher.search("fox", k=2)
    assert index.counters["searches"] == 2
