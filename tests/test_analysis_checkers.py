"""Per-rule fixture suites for the static analysis checkers.

Each rule gets: a fixture that fires (asserting rule id and line), the
matching clean fixture, and a suppression-works case.  Fixtures run
through :func:`repro.analysis.analyze_source` with a ``rel`` path
chosen to land in the rule's scope.
"""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

LIB = "src/repro/llm/snippet.py"
CORE = "src/repro/core/snippet.py"
TEST = "tests/test_snippet.py"


def findings(text, rel=LIB, rule=None):
    result = analyze_source(textwrap.dedent(text), rel=rel)
    found = result.findings
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


def rules_of(text, rel=LIB):
    return {f.rule for f in findings(text, rel=rel)}


# ---------------------------------------------------------------------------
# lock-discipline


LOCKED_CLASS = """
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self.hits = 0

        def bump(self):
            {body}
"""


def test_lock_discipline_fires_on_bare_augassign():
    text = LOCKED_CLASS.format(body="self.hits += 1")
    found = findings(text, rule="lock-discipline")
    assert len(found) == 1
    assert found[0].line == 10
    assert "with" in found[0].message


def test_lock_discipline_clean_under_with():
    text = LOCKED_CLASS.format(body="with self._lock:\n                self.hits += 1")
    assert findings(text, rule="lock-discipline") == []


def test_lock_discipline_ignores_init():
    # Construction dunders run before the instance is shared.
    text = """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0
                self.hits += 1
    """
    assert findings(text, rule="lock-discipline") == []


def test_lock_discipline_ignores_lockless_classes():
    text = """
        class Plain:
            def bump(self):
                self.hits += 1
    """
    assert findings(text, rule="lock-discipline") == []


def test_lock_discipline_sees_rlock_and_class_level_locks():
    text = """
        import threading

        class Stats:
            guard = threading.RLock()

            def bump(self):
                self.hits += 1
    """
    assert len(findings(text, rule="lock-discipline")) == 1


def test_lock_discipline_suppression():
    text = LOCKED_CLASS.format(
        body="self.hits += 1  # repro: disable=lock-discipline -- caller holds lock"
    )
    result = analyze_source(textwrap.dedent(text), rel=LIB)
    assert [f for f in result.findings if f.rule == "lock-discipline"] == []
    assert result.suppressed == 1


def test_lock_discipline_flags_bare_registry_store():
    # The PR 8 in-flight registry shape: dict stores need the lock too.
    text = LOCKED_CLASS.format(body="self._flights[key] = latch")
    found = findings(text, rule="lock-discipline")
    assert len(found) == 1
    assert "self._flights[...]" in found[0].message


def test_lock_discipline_flags_bare_registry_delete():
    text = LOCKED_CLASS.format(body="del self._flights[key]")
    found = findings(text, rule="lock-discipline")
    assert len(found) == 1
    assert "del self._flights[...]" in found[0].message


def test_lock_discipline_flags_bare_mutator_calls():
    for body in (
        "self._flights.pop(key, None)",
        "self._pending.setdefault(key, []).append(item)",
        "self._cache.clear()",
    ):
        found = findings(LOCKED_CLASS.format(body=body), rule="lock-discipline")
        assert found, body
    # setdefault + append on its result is two mutations of shared state
    text = LOCKED_CLASS.format(body="self._pending.setdefault(key, []).append(x)")
    assert len(findings(text, rule="lock-discipline")) == 1  # chained call counts once


def test_lock_discipline_flags_subscript_augassign():
    text = LOCKED_CLASS.format(body="self._counts[key] += 1")
    assert len(findings(text, rule="lock-discipline")) == 1


def test_lock_discipline_registry_mutations_clean_under_lock():
    for body in (
        "with self._lock:\n                self._flights[key] = latch",
        "with self._lock:\n                del self._flights[key]",
        "with self._lock:\n                self._flights.pop(key, None)",
        "with self._lock:\n                self._counts[key] += 1",
    ):
        assert findings(LOCKED_CLASS.format(body=body), rule="lock-discipline") == []


def test_lock_discipline_ignores_non_self_and_method_calls():
    # Mutating a local, a parameter, or calling a non-mutator method on
    # self state is out of scope.
    for body in (
        "window.submissions.append(item)",
        "local = {}\n            local[key] = 1",
        "self.entered.set()",
        "self.results = list(items)",
    ):
        assert findings(LOCKED_CLASS.format(body=body), rule="lock-discipline") == []


# ---------------------------------------------------------------------------
# leaked-resource (the interprocedural successor to acquire-release;
# cross-function cases live in tests/test_analysis_leaked_resource.py)


def test_leaked_resource_fires_without_cancel_path():
    text = """
        class Client:
            def acquire(self):
                wait = self.bucket.reserve()
                self._sleep(wait)
                return wait
    """
    found = findings(text, rule="leaked-resource")
    assert len(found) == 1
    assert found[0].line == 4
    assert "cancel" in found[0].message


def test_leaked_resource_clean_with_refund_in_except():
    text = """
        class Client:
            def acquire(self):
                wait = self.bucket.reserve()
                try:
                    self._sleep(wait)
                except BaseException:
                    self.bucket.cancel()
                    raise
                return wait
    """
    assert findings(text, rule="leaked-resource") == []


def test_leaked_resource_clean_with_refund_in_finally():
    text = """
        class Client:
            def acquire(self):
                wait = self.bucket.reserve()
                try:
                    self._sleep(wait)
                finally:
                    self.bucket.cancel()
    """
    assert findings(text, rule="leaked-resource") == []


def test_leaked_resource_allows_claim_and_return():
    # Nothing after the reserve can raise, so nothing can leak.
    text = """
        class Client:
            def reserve_slot(self):
                wait = self.bucket.reserve()
                return wait
    """
    assert findings(text, rule="leaked-resource") == []


def test_leaked_resource_out_of_scope_in_tests():
    # Property tests poke reserve() bare on purpose.
    text = """
        def test_refill(bucket):
            wait = bucket.reserve()
            assert wait >= 0
    """
    assert findings(text, rel=TEST, rule="leaked-resource") == []


def test_open_outside_with_fires():
    text = """
        def read(path):
            handle = open(path)
            return handle.read()
    """
    found = findings(text, rule="leaked-resource")
    assert len(found) == 1
    assert "open" in found[0].message


def test_open_inside_with_is_clean():
    text = """
        def read(path):
            with open(path) as handle:
                return handle.read()
    """
    assert findings(text, rule="leaked-resource") == []


def test_os_open_raw_fd_is_not_flagged():
    # os.open returns an int, not a context manager: a lockfile idiom.
    text = """
        import os

        def lockfile(path):
            fd = os.open(path, os.O_CREAT | os.O_EXCL)
            os.close(fd)
    """
    assert findings(text, rule="leaked-resource") == []


def test_fdopen_outside_with_fires():
    text = """
        import os

        def wrap(fd):
            return os.fdopen(fd)
    """
    assert len(findings(text, rule="leaked-resource")) == 1


def test_leaked_resource_suppression():
    text = """
        def read(path):
            handle = open(path)  # repro: disable=leaked-resource -- closed by caller
            return handle
    """
    result = analyze_source(textwrap.dedent(text), rel=LIB)
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# async-hygiene


def test_async_hygiene_flags_time_sleep():
    text = """
        import time

        async def slow():
            time.sleep(0.1)
    """
    found = findings(text, rule="async-hygiene")
    assert len(found) == 1
    assert found[0].line == 5
    assert "asyncio.sleep" in found[0].message


def test_async_hygiene_resolves_import_aliases():
    text = """
        import time as clock

        async def slow():
            clock.sleep(0.1)
    """
    assert len(findings(text, rule="async-hygiene")) == 1


def test_async_hygiene_allows_awaited_asyncio_sleep():
    text = """
        import asyncio

        async def slow():
            await asyncio.sleep(0.1)
    """
    assert findings(text, rule="async-hygiene") == []


def test_async_hygiene_flags_sync_http_and_bare_generate():
    text = """
        import urllib.request

        async def fetch(model, prompt):
            urllib.request.urlopen("http://x")
            return model.generate(prompt)
    """
    found = findings(text, rule="async-hygiene")
    assert [f.line for f in found] == [5, 6]


def test_async_hygiene_flags_blocking_acquire():
    text = """
        async def critical(lock):
            lock.acquire()
    """
    assert len(findings(text, rule="async-hygiene")) == 1


def test_async_hygiene_allows_nonblocking_acquire():
    text = """
        async def critical(lock):
            if lock.acquire(blocking=False):
                lock.release()
    """
    assert findings(text, rule="async-hygiene") == []


def test_async_hygiene_allows_to_thread_method_reference():
    # Passing the method *reference* is not a call: it runs off-loop.
    text = """
        import asyncio

        async def fetch(model, prompt):
            return await asyncio.to_thread(model.generate, prompt)
    """
    assert findings(text, rule="async-hygiene") == []


def test_async_hygiene_skips_sync_closures():
    text = """
        import time

        async def outer():
            def worker():
                time.sleep(1)
            return worker
    """
    assert findings(text, rule="async-hygiene") == []


def test_async_hygiene_out_of_scope_in_tests():
    text = """
        import time

        async def helper():
            time.sleep(0.01)
    """
    assert findings(text, rel=TEST, rule="async-hygiene") == []


def test_async_hygiene_suppression():
    text = """
        async def answer(self, prompt):
            # repro: disable=async-hygiene -- pure CPU, no I/O to overlap
            return self.generate(prompt)
    """
    result = analyze_source(textwrap.dedent(text), rel=LIB)
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# error-taxonomy


def test_error_taxonomy_flags_bare_builtins():
    text = """
        def check(n):
            if n < 0:
                raise ValueError("bad n")
            if n > 10:
                raise RuntimeError("too big")
    """
    found = findings(text, rule="error-taxonomy")
    assert [f.line for f in found] == [4, 6]
    assert "RageError" in found[0].message


def test_error_taxonomy_allows_taxonomy_classes():
    text = """
        from repro.errors import DocumentError

        def check(doc_id):
            if not doc_id:
                raise DocumentError("empty doc_id")
    """
    assert findings(text, rule="error-taxonomy") == []


def test_error_taxonomy_allows_protocol_exceptions():
    text = """
        def abstract(self):
            raise NotImplementedError

        def entry():
            raise SystemExit(2)
    """
    assert findings(text, rule="error-taxonomy") == []


def test_error_taxonomy_allows_bare_reraise():
    text = """
        def forward(thunk):
            try:
                return thunk()
            except Exception:
                raise
    """
    assert findings(text, rule="error-taxonomy") == []


def test_error_taxonomy_out_of_scope_in_tests():
    text = """
        def helper():
            raise ValueError("tests may raise builtins")
    """
    assert findings(text, rel=TEST, rule="error-taxonomy") == []


def test_error_taxonomy_suppression():
    text = """
        def check(n):
            raise ValueError("x")  # repro: disable=error-taxonomy -- dunder contract
    """
    result = analyze_source(textwrap.dedent(text), rel=LIB)
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# test-network-isolation


def test_network_isolation_flags_socket_import_in_tests():
    text = """
        import socket
    """
    found = findings(text, rel=TEST, rule="test-network-isolation")
    assert len(found) == 1
    assert "socket" in found[0].message


def test_network_isolation_flags_from_imports():
    text = """
        from urllib import request
        from http.client import HTTPConnection
    """
    found = findings(text, rel=TEST, rule="test-network-isolation")
    assert [f.line for f in found] == [2, 3]


def test_network_isolation_allows_urllib_parse():
    text = """
        import urllib.parse
        from urllib.parse import urlsplit
    """
    assert findings(text, rel=TEST, rule="test-network-isolation") == []


def test_network_isolation_applies_to_benchmarks():
    text = """
        import http.client
    """
    found = findings(
        text, rel="benchmarks/bench_snippet.py", rule="test-network-isolation"
    )
    assert len(found) == 1


def test_network_isolation_exempts_fakes_package():
    text = """
        import socket
    """
    assert (
        findings(text, rel="tests/fakes/helper.py", rule="test-network-isolation")
        == []
    )


def test_network_isolation_out_of_scope_in_library():
    # Library transports legitimately speak HTTP; the rule is test-only.
    text = """
        import urllib.request
    """
    assert findings(text, rel=LIB, rule="test-network-isolation") == []


def test_network_isolation_suppression():
    text = """
        import socket  # repro: disable=test-network-isolation -- guard self-test
    """
    result = analyze_source(textwrap.dedent(text), rel=TEST)
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# determinism


def test_determinism_flags_module_level_random():
    text = """
        import random

        def pick(xs):
            return random.sample(xs, 3)
    """
    found = findings(text, rel=CORE, rule="determinism")
    assert len(found) == 1
    assert "seeded" in found[0].message


def test_determinism_resolves_random_alias():
    text = """
        import random as rnd

        def jumble(xs):
            rnd.shuffle(xs)
    """
    assert len(findings(text, rel=CORE, rule="determinism")) == 1


def test_determinism_flags_unseeded_random_instance():
    text = """
        import random

        def make_rng():
            return random.Random()
    """
    found = findings(text, rel=CORE, rule="determinism")
    assert len(found) == 1
    assert "seed" in found[0].message


def test_determinism_allows_seeded_random_instance():
    text = """
        import random

        def make_rng(seed):
            return random.Random(seed)
    """
    assert findings(text, rel=CORE, rule="determinism") == []


def test_determinism_flags_clock_and_entropy_reads():
    text = """
        import os
        import time
        import uuid

        def stamp():
            return time.time(), uuid.uuid4(), os.urandom(8)
    """
    found = findings(text, rel=CORE, rule="determinism")
    assert len(found) == 3


def test_determinism_out_of_scope_outside_exactness_zone():
    # transports/benchmark harnesses read clocks legitimately
    text = """
        import time

        def stamp():
            return time.time()
    """
    assert findings(text, rel=LIB, rule="determinism") == []
    assert findings(text, rel=TEST, rule="determinism") == []


def test_determinism_suppression():
    text = """
        import time

        def stamp():
            return time.time()  # repro: disable=determinism -- display only
    """
    result = analyze_source(textwrap.dedent(text), rel=CORE)
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# swallowed-error


def test_swallowed_error_flags_silent_broad_handler():
    text = """
        def load(path):
            try:
                return open(path).read()
            except Exception:
                pass
    """
    found = findings(text, rule="swallowed-error")
    assert len(found) == 1
    assert found[0].line == 5
    assert "swallows" in found[0].message


def test_swallowed_error_flags_base_exception():
    text = """
        def load(path):
            try:
                return open(path).read()
            except BaseException:
                return None
    """
    found = findings(text, rule="swallowed-error")
    assert len(found) == 1


def test_swallowed_error_allows_reraise():
    text = """
        def load(path):
            try:
                return open(path).read()
            except Exception:
                raise
    """
    assert findings(text, rule="swallowed-error") == []


def test_swallowed_error_allows_taxonomy_translation():
    text = """
        from repro.errors import StoreDecodeError

        def load(path):
            try:
                return open(path).read()
            except Exception:
                raise StoreDecodeError(path)
    """
    assert findings(text, rule="swallowed-error") == []


def test_swallowed_error_allows_bound_name_use():
    text = """
        def respond(handler):
            try:
                handler()
            except Exception as error:
                return {"error": str(error)}
    """
    assert findings(text, rule="swallowed-error") == []


def test_swallowed_error_allows_recording_call():
    text = """
        def tick(journal):
            try:
                work()
            except Exception:
                journal.append("tick failed")
    """
    assert findings(text, rule="swallowed-error") == []


def test_swallowed_error_allows_counter_mutation():
    text = """
        class Worker:
            def tick(self):
                try:
                    work()
                except Exception:
                    self.errors += 1
    """
    assert findings(text, rule="swallowed-error") == []


def test_swallowed_error_ignores_narrow_handlers():
    text = """
        def load(path):
            try:
                return open(path).read()
            except OSError:
                return None
    """
    assert findings(text, rule="swallowed-error") == []


def test_swallowed_error_out_of_scope_in_tests():
    text = """
        def probe():
            try:
                work()
            except Exception:
                pass
    """
    assert findings(text, rel=TEST, rule="swallowed-error") == []


def test_swallowed_error_suppression():
    text = """
        def probe():
            try:
                work()
            except Exception:  # repro: disable=swallowed-error -- best-effort probe
                pass
    """
    result = analyze_source(textwrap.dedent(text), rel=LIB)
    assert result.findings == []
    assert result.suppressed == 1
