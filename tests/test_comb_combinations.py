"""Combination enumeration and sampling tests."""

import itertools
import random

import pytest

from repro.combinatorics import (
    all_combinations,
    combinations_of_size,
    complement,
    count_combinations,
    ordered_combinations,
    sample_combinations,
)
from repro.errors import ConfigError

ITEMS = ["a", "b", "c", "d"]


def test_combinations_of_size():
    assert list(combinations_of_size(ITEMS, 2)) == list(itertools.combinations(ITEMS, 2))
    assert list(combinations_of_size(ITEMS, 0)) == [()]
    assert list(combinations_of_size(ITEMS, 5)) == []


def test_all_combinations_size_major():
    combos = list(all_combinations(ITEMS))
    sizes = [len(c) for c in combos]
    assert sizes == sorted(sizes)
    assert len(combos) == 2 ** len(ITEMS)
    assert combos[0] == ()
    assert combos[-1] == tuple(ITEMS)


def test_all_combinations_exclusions():
    combos = list(all_combinations(ITEMS, include_empty=False, include_full=False))
    assert () not in combos
    assert tuple(ITEMS) not in combos
    assert len(combos) == 2 ** len(ITEMS) - 2


def test_count_combinations_matches_enumeration():
    for include_empty in (True, False):
        for include_full in (True, False):
            expected = len(list(all_combinations(ITEMS, include_empty, include_full)))
            assert count_combinations(len(ITEMS), include_empty, include_full) == expected


def test_ordered_combinations_size_then_relevance():
    scores = {"a": 0.1, "b": 0.9, "c": 0.5, "d": 0.3}
    combos = list(ordered_combinations(ITEMS, scores=scores))
    sizes = [len(c) for c in combos]
    assert sizes == sorted(sizes)
    size1 = [c for c in combos if len(c) == 1]
    assert size1 == [("b",), ("c",), ("d",), ("a",)]
    size2 = [c for c in combos if len(c) == 2]
    totals = [sum(scores[d] for d in combo) for combo in size2]
    assert totals == sorted(totals, reverse=True)


def test_ordered_combinations_ascending():
    scores = {"a": 0.1, "b": 0.9, "c": 0.5, "d": 0.3}
    size1 = [
        c for c in ordered_combinations(ITEMS, scores=scores, descending=False)
        if len(c) == 1
    ]
    assert size1 == [("a",), ("d",), ("c",), ("b",)]


def test_ordered_combinations_without_scores_lexicographic():
    size2 = [c for c in ordered_combinations(ITEMS) if len(c) == 2]
    assert size2 == list(itertools.combinations(ITEMS, 2))


def test_ordered_combinations_bounds():
    combos = list(ordered_combinations(ITEMS, min_size=2, max_size=3))
    assert {len(c) for c in combos} == {2, 3}
    with pytest.raises(ConfigError):
        list(ordered_combinations(ITEMS, min_size=3, max_size=2))
    with pytest.raises(ConfigError):
        list(ordered_combinations(ITEMS, min_size=0, max_size=9))


def test_ordered_combinations_deterministic_ties():
    scores = {item: 1.0 for item in ITEMS}
    first = list(ordered_combinations(ITEMS, scores=scores))
    second = list(ordered_combinations(ITEMS, scores=scores))
    assert first == second


def test_sample_combinations_distinct_and_valid():
    rng = random.Random(0)
    picks = sample_combinations(ITEMS, 5, rng)
    assert len(picks) == 5
    assert len(set(picks)) == 5
    for combo in picks:
        assert set(combo) <= set(ITEMS)
        assert list(combo) == [i for i in ITEMS if i in combo]  # original order


def test_sample_combinations_excludes_empty_by_default():
    rng = random.Random(1)
    for _ in range(20):
        assert () not in sample_combinations(ITEMS, 3, rng)


def test_sample_combinations_saturating_returns_all():
    rng = random.Random(2)
    picks = sample_combinations(ITEMS, 10_000, rng, include_empty=True)
    assert len(picks) == 2 ** len(ITEMS)


def test_sample_combinations_invalid():
    with pytest.raises(ConfigError):
        sample_combinations(ITEMS, 0, random.Random(0))


def test_complement():
    assert complement(ITEMS, ("b", "d")) == ("a", "c")
    assert complement(ITEMS, ()) == tuple(ITEMS)
    assert complement(ITEMS, ITEMS) == ()


def test_combination_mask_round_trip():
    from repro.combinatorics import combination_mask, mask_combination

    for combo in itertools.chain.from_iterable(
        itertools.combinations(ITEMS, size) for size in range(len(ITEMS) + 1)
    ):
        mask = combination_mask(ITEMS, combo)
        assert mask_combination(ITEMS, mask) == combo
    assert combination_mask(ITEMS, ()) == 0
    assert combination_mask(ITEMS, ITEMS) == (1 << len(ITEMS)) - 1


def test_combination_mask_rejects_unknown_member():
    from repro.combinatorics import combination_mask

    with pytest.raises(ConfigError):
        combination_mask(ITEMS, ("a", "zz"))


def test_mask_combination_rejects_out_of_range():
    from repro.combinatorics import mask_combination

    with pytest.raises(ConfigError):
        mask_combination(ITEMS, 1 << len(ITEMS))
    with pytest.raises(ConfigError):
        mask_combination(ITEMS, -1)


def test_sample_combinations_empty_items_returns_early():
    # Regression: rng.getrandbits(0) raises ValueError on Python < 3.11;
    # the degenerate universe must never reach the sampling loop.
    rng = random.Random(0)
    assert sample_combinations([], 3, rng) == []
    assert sample_combinations([], 3, rng, include_empty=True) == [()]
    # The empty combination is also the full one: excluding either
    # excludes it (mirrors all_combinations' flag semantics).
    assert sample_combinations([], 3, rng, include_empty=True, include_full=False) == []
    with pytest.raises(ConfigError):
        sample_combinations([], 0, rng)
