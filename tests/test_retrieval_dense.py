"""Dense retrieval and hybrid fusion tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, EmptyIndexError
from repro.retrieval import (
    BM25Scorer,
    DenseIndex,
    DenseScorer,
    Document,
    HashedEmbedder,
    HybridScorer,
    InvertedIndex,
    Searcher,
)

DOCS = [
    Document(doc_id="fox", text="the quick brown fox jumps over the lazy dog"),
    Document(doc_id="fox2", text="a brown fox ran across the quiet field"),
    Document(doc_id="cook", text="simmer the onions garlic and tomatoes slowly"),
    Document(doc_id="space", text="the rocket reached orbit after a flawless launch"),
]


@pytest.fixture(scope="module")
def dense_index():
    return DenseIndex.build(DOCS)


def test_embedder_shapes_and_norms():
    embedder = HashedEmbedder(dimensions=64)
    vector = embedder.embed("quick brown fox")
    assert vector.shape == (64,)
    assert np.linalg.norm(vector) == pytest.approx(1.0)


def test_embedder_deterministic():
    embedder = HashedEmbedder()
    assert np.array_equal(embedder.embed("same text"), embedder.embed("same text"))


def test_embedder_empty_text_zero_vector():
    embedder = HashedEmbedder()
    assert np.linalg.norm(embedder.embed("")) == 0.0
    assert np.linalg.norm(embedder.embed("the of and")) == 0.0  # all stopwords


def test_embedder_similarity_orders_topics():
    embedder = HashedEmbedder()
    query = embedder.embed("brown fox")
    fox = embedder.embed("the quick brown fox jumps")
    cooking = embedder.embed("simmer onions garlic tomatoes")
    assert float(query @ fox) > float(query @ cooking)


def test_embedder_batch():
    embedder = HashedEmbedder(dimensions=32)
    matrix = embedder.embed_batch(["one text", "two texts"])
    assert matrix.shape == (2, 32)
    assert embedder.embed_batch([]).shape == (0, 32)


def test_embedder_validation():
    with pytest.raises(ConfigError):
        HashedEmbedder(dimensions=0)


def test_dense_search_ranks_on_topic(dense_index):
    results = dense_index.search("brown fox running", k=4)
    top_ids = [doc_id for doc_id, _ in results[:2]]
    assert set(top_ids) == {"fox", "fox2"}
    scores = [score for _, score in results]
    assert scores == sorted(scores, reverse=True)


def test_dense_search_validation(dense_index):
    with pytest.raises(ConfigError):
        dense_index.search("q", k=0)
    with pytest.raises(EmptyIndexError):
        DenseIndex().search("q")


def test_dense_scores_all_docs(dense_index):
    scores = dense_index.scores("rocket orbit")
    assert set(scores) == {doc.doc_id for doc in DOCS}
    assert scores["space"] == max(scores.values())


def test_dense_scorer_through_searcher(dense_index):
    sparse_index = InvertedIndex.build(DOCS)
    searcher = Searcher(sparse_index, scorer=DenseScorer(dense_index))
    result = searcher.search("brown fox", k=2)
    assert set(result.doc_ids()) == {"fox", "fox2"}


def test_hybrid_scorer_combines(dense_index):
    sparse_index = InvertedIndex.build(DOCS)
    hybrid = HybridScorer(BM25Scorer(), DenseScorer(dense_index), alpha=0.5)
    searcher = Searcher(sparse_index, scorer=hybrid)
    result = searcher.search("quick brown fox", k=4)
    assert result.doc_ids()[0] == "fox"


def test_hybrid_alpha_extremes(dense_index):
    sparse_index = InvertedIndex.build(DOCS)
    terms = sparse_index.tokenizer.tokenize("brown fox")
    sparse_only = HybridScorer(BM25Scorer(), DenseScorer(dense_index), alpha=1.0)
    dense_only = HybridScorer(BM25Scorer(), DenseScorer(dense_index), alpha=0.0)
    s_scores = sparse_only.score_query(sparse_index, terms)
    d_scores = dense_only.score_query(sparse_index, terms)
    # alpha=1: ranking follows sparse normalization; alpha=0: dense
    assert max(s_scores, key=s_scores.get) in {"fox", "fox2"}
    assert max(d_scores, key=d_scores.get) in {"fox", "fox2"}


def test_hybrid_alpha_validation(dense_index):
    with pytest.raises(ConfigError):
        HybridScorer(BM25Scorer(), DenseScorer(dense_index), alpha=1.5)


def test_hybrid_normalization_constant_scores():
    scores = HybridScorer._normalize({"a": 2.0, "b": 2.0})
    assert scores == {"a": 1.0, "b": 1.0}
    assert HybridScorer._normalize({}) == {}


def test_dense_engine_integration(dense_index):
    """The whole RAGE engine runs on a dense retriever."""
    from repro import Rage, RageConfig
    from repro.llm import ScriptedLLM

    sparse_index = InvertedIndex.build(DOCS)
    rage = Rage(
        sparse_index,
        ScriptedLLM(default="an answer"),
        config=RageConfig(k=2),
        retrieval_scorer=DenseScorer(dense_index),
    )
    context = rage.retrieve("brown fox")
    assert set(context.doc_ids()) == {"fox", "fox2"}


# ---------------------------------------------------------------------------
# Reciprocal-rank fusion


class _FixedScorer:
    """A Scorer returning canned scores, for fusion-shape tests."""

    def __init__(self, scores):
        self._scores = scores

    def score_query(self, index, query_terms):
        return dict(self._scores)


def test_rrf_is_scale_invariant():
    """RRF fuses ranks, so rescaling one signal changes nothing.

    This is the property raw score addition lacks: an unbounded BM25
    value would swamp a [-1, 1] cosine the moment the corpus grows.
    """
    from repro.retrieval import ReciprocalRankFusionScorer

    sparse = {"a": 12.0, "b": 7.0, "c": 1.0}
    dense = {"a": 0.1, "b": 0.9, "c": 0.5}
    base = ReciprocalRankFusionScorer(
        [_FixedScorer(sparse), _FixedScorer(dense)]
    ).score_query(None, ["q"])
    scaled = ReciprocalRankFusionScorer(
        [
            _FixedScorer({d: s * 1000.0 for d, s in sparse.items()}),
            _FixedScorer(dense),
        ]
    ).score_query(None, ["q"])
    assert base == scaled


def test_rrf_deterministic_tie_breaks():
    from repro.retrieval import ReciprocalRankFusionScorer

    tied = _FixedScorer({"b": 1.0, "a": 1.0, "c": 1.0})
    ranks = ReciprocalRankFusionScorer._ranks(tied.score_query(None, []))
    assert ranks == {"a": 1, "b": 2, "c": 3}


def test_rrf_weights_and_partial_coverage():
    from repro.retrieval import ReciprocalRankFusionScorer

    fused = ReciprocalRankFusionScorer(
        [_FixedScorer({"a": 1.0}), _FixedScorer({"b": 1.0})],
        k0=1.0,
        weights=[2.0, 1.0],
    ).score_query(None, ["q"])
    # Each doc is rank 1 for its scorer and unscored by the other.
    assert fused == {"a": 2.0 / 2.0, "b": 1.0 / 2.0}


def test_rrf_validation():
    from repro.retrieval import ReciprocalRankFusionScorer

    with pytest.raises(ConfigError):
        ReciprocalRankFusionScorer([])
    with pytest.raises(ConfigError):
        ReciprocalRankFusionScorer([_FixedScorer({})], k0=0.0)
    with pytest.raises(ConfigError):
        ReciprocalRankFusionScorer([_FixedScorer({})], weights=[1.0, 2.0])


# ---------------------------------------------------------------------------
# Fusion stability under corpus growth (regression)


def _hybrid_ranking(docs, query, fusion):
    from repro.retrieval import ReciprocalRankFusionScorer, top_k

    sparse_index = InvertedIndex.build(docs)
    dense = DenseScorer(DenseIndex.build(docs))
    if fusion == "rrf":
        scorer = ReciprocalRankFusionScorer([BM25Scorer(), dense])
    else:
        scorer = HybridScorer(BM25Scorer(), dense, alpha=0.5)
    terms = sparse_index.tokenizer.tokenize(query)
    scores = scorer.score_query(sparse_index, terms)
    return [doc_id for doc_id, _ in top_k(scores, k=2)]


@pytest.mark.parametrize("fusion", ["minmax", "rrf"])
def test_fusion_rank_stability_under_corpus_growth(fusion):
    """Growing the corpus with unrelated filler must not flip the
    relative order of the two fox documents.

    With raw score addition it would: BM25's IDF term grows with the
    corpus while cosine stays bounded in [-1, 1], so the sparse signal
    gradually drowns the dense one.  Normalized and rank-based fusion
    are immune.
    """
    query = "quick brown fox"
    before = _hybrid_ranking(DOCS, query, fusion)
    filler = [
        Document(doc_id=f"filler-{i}", text=f"unrelated topic number {i} entirely")
        for i in range(60)
    ]
    after = _hybrid_ranking(DOCS + filler, query, fusion)
    assert before == after == ["fox", "fox2"]
