"""Kendall's tau tests, including a scipy cross-check."""

import random

import pytest
from scipy.stats import kendalltau as scipy_kendalltau

from repro.combinatorics import (
    count_inversions,
    kendall_distance,
    kendall_tau,
    kendall_tau_from_inversions,
    rank_map,
)
from repro.errors import ConfigError


def test_count_inversions_basic():
    assert count_inversions([1, 2, 3]) == 0
    assert count_inversions([3, 2, 1]) == 3
    assert count_inversions([2, 1, 3]) == 1
    assert count_inversions([]) == 0
    assert count_inversions([5]) == 0


def test_count_inversions_matches_bruteforce():
    rng = random.Random(0)
    for _ in range(100):
        n = rng.randint(0, 12)
        values = [rng.randint(0, 20) for _ in range(n)]
        brute = sum(
            1
            for i in range(n)
            for j in range(i + 1, n)
            if values[i] > values[j]
        )
        assert count_inversions(values) == brute


def test_tau_identity_and_reverse():
    items = ["a", "b", "c", "d", "e"]
    assert kendall_tau(items, items) == 1.0
    assert kendall_tau(items, list(reversed(items))) == -1.0


def test_tau_adjacent_swap():
    items = ["a", "b", "c", "d"]
    swapped = ["b", "a", "c", "d"]
    # 1 inversion out of C(4,2)=6 pairs: tau = 1 - 2/6.
    assert kendall_tau(items, swapped) == pytest.approx(1 - 2 / 6)


def test_tau_matches_scipy():
    rng = random.Random(5)
    for _ in range(50):
        k = rng.randint(2, 15)
        reference = list(range(k))
        candidate = reference[:]
        rng.shuffle(candidate)
        ours = kendall_tau(reference, candidate)
        theirs = scipy_kendalltau(reference, [candidate.index(i) for i in reference])
        assert ours == pytest.approx(theirs.statistic)


def test_tau_single_item():
    assert kendall_tau(["a"], ["a"]) == 1.0


def test_tau_validation():
    with pytest.raises(ConfigError):
        kendall_tau(["a", "b"], ["a"])
    with pytest.raises(ConfigError):
        kendall_tau(["a", "b"], ["a", "c"])
    with pytest.raises(ConfigError):
        kendall_tau(["a", "b"], ["a", "a"])
    with pytest.raises(ConfigError):
        rank_map(["a", "a"])


def test_kendall_distance():
    items = ["a", "b", "c"]
    assert kendall_distance(items, items) == 0
    assert kendall_distance(items, ["c", "b", "a"]) == 3
    assert kendall_distance(items, ["b", "a", "c"]) == 1


def test_tau_from_inversions_bounds():
    k = 6
    pairs = k * (k - 1) // 2
    assert kendall_tau_from_inversions(0, k) == 1.0
    assert kendall_tau_from_inversions(pairs, k) == -1.0
    assert kendall_tau_from_inversions(0, 1) == 1.0


def test_tau_decreases_with_inversions():
    k = 5
    taus = [kendall_tau_from_inversions(i, k) for i in range(11)]
    assert taus == sorted(taus, reverse=True)
