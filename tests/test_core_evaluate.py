"""ContextEvaluator tests (memoization, call counting, batching)."""

from repro.core import ContextEvaluator
from repro.core.context import Context
from repro.llm import ScriptedLLM
from repro.retrieval import Document


def _scripted_world(k=3):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q?", docs)
    llm = ScriptedLLM(answer_fn=lambda q, texts: f"{len(texts)} sources")
    return context, llm


def test_original_and_empty(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    assert evaluator.original().answer == "Roger Federer"
    assert evaluator.empty().answer == "Novak Djokovic"


def test_memoization(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    first = evaluator.evaluate(big_three_context.doc_ids())
    calls = evaluator.llm_calls
    second = evaluator.evaluate(big_three_context.doc_ids())
    assert evaluator.llm_calls == calls  # served from memo
    assert first is second


def test_order_is_part_of_the_key(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    ids = big_three_context.doc_ids()
    a = evaluator.evaluate(ids)
    b = evaluator.evaluate((ids[1], ids[0]) + ids[2:])
    assert evaluator.llm_calls == 2
    assert a.normalized_answer != b.normalized_answer  # UC1 flip


def test_normalized_answer(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    evaluation = evaluator.original()
    assert evaluation.normalized_answer == "roger federer"


def test_subset_evaluation(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    only_h2h = evaluator.evaluate(("bigthree-4-head-to-head",))
    assert only_h2h.answer == "Rafael Nadal"


def test_generation_bypasses_memo(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    evaluator.generation(big_three_context.doc_ids())
    evaluator.generation(big_three_context.doc_ids())
    assert evaluator.llm_calls == 2


def test_generation_returns_attention(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    result = evaluator.generation(big_three_context.doc_ids())
    assert result.attention is not None
    assert len(result.attention.source_totals) == big_three_context.k


def test_evaluate_many_deduplicates_and_aligns():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    orderings = [("d0",), ("d0", "d1"), ("d0",), (), ("d0", "d1")]
    evaluations = evaluator.evaluate_many(orderings)
    assert [e.ordered_doc_ids for e in evaluations] == [
        ("d0",), ("d0", "d1"), ("d0",), (), ("d0", "d1"),
    ]
    assert [e.answer for e in evaluations] == [
        "1 sources", "2 sources", "1 sources", "0 sources", "2 sources",
    ]
    # three distinct orderings -> three real calls, duplicates free
    assert evaluator.llm_calls == 3
    assert llm.calls == 3


def test_evaluate_many_consults_and_fills_memo():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    evaluator.evaluate(("d0",))
    evaluator.evaluate_many([("d0",), ("d1",)])
    assert evaluator.llm_calls == 2  # only ("d1",) was a miss
    calls = evaluator.llm_calls
    # single-path evaluation now hits the batch-filled memo
    assert evaluator.evaluate(("d1",)).answer == "1 sources"
    assert evaluator.llm_calls == calls


def test_is_memoized_and_memo_size():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    assert not evaluator.is_memoized(("d0",))
    evaluator.evaluate(("d0",))
    assert evaluator.is_memoized(("d0",))
    assert evaluator.is_memoized(["d0"])  # any sequence form
    assert evaluator.memo_size == 1


def test_prime_seeds_memo_from_external_generation():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    generation = evaluator.generation(context.doc_ids())  # fresh, 1 call
    evaluator.prime(context.doc_ids(), generation)
    calls = evaluator.llm_calls
    evaluation = evaluator.original()
    assert evaluator.llm_calls == calls  # memo hit, no new call
    assert evaluation.answer == generation.answer


def test_evaluate_many_empty_is_free():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    assert evaluator.evaluate_many([]) == []
    assert evaluator.llm_calls == 0


# -- lattice-aware, adaptive scan_candidates ---------------------------------


def _monotone_world(k=4):
    """Answer depends monotonically on whether 'text 0' is kept."""
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q?", docs)
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: "with-d0" if "text 0" in texts else "without-d0"
    )
    return context, llm


def _lattice_for(context):
    from repro.core import AnswerLattice

    return AnswerLattice(context, assume_order_insensitive=True)


def test_scan_skips_candidates_whose_implied_answer_cannot_flip():
    from repro.core.evaluate import scan_candidates

    context, llm = _monotone_world(4)
    evaluator = ContextEvaluator(llm, context)
    lattice = _lattice_for(context)
    # Witnesses: everything containing d0 answers "with-d0".
    baseline = None
    for kept in (("d0",), context.doc_ids()):
        evaluation = evaluator.evaluate(kept)
        baseline = evaluation.normalized_answer
        lattice.record(kept, evaluation.answer, evaluation.normalized_answer)
    calls_before = evaluator.llm_calls
    candidates = [(("d0", "d1"), 1), (("d0", "d2"), 2), (("d1", "d2"), 3)]
    hit, calls, exhausted = scan_candidates(
        evaluator,
        iter(candidates),
        lambda payload, ev: payload if ev.normalized_answer != baseline else None,
        max_evaluations=10,
        lattice=lattice,
        flips=lambda norm: norm != baseline,
    )
    # The two d0-supersets are implied non-flips and skipped for free;
    # only the genuine flip candidate is evaluated.
    assert hit == 3
    assert calls == 1
    assert evaluator.llm_calls - calls_before == 1
    assert lattice.stats.skipped_candidates == 2


def test_scan_verifies_implied_flips_before_returning():
    from repro.core import AnswerLattice
    from repro.core.evaluate import scan_candidates

    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(4)]
    context = Context.from_documents("q?", docs)
    # Non-monotone reality: pairs answer "flip" only for (d1, d2).
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: "flip" if texts == ("text 1", "text 2") else "base"
    )
    evaluator = ContextEvaluator(llm, context)
    lattice = AnswerLattice(context, assume_order_insensitive=True)
    # Fabricate witnesses claiming everything containing d1 flips.
    lattice.record(("d1",), "flip", "flip")
    lattice.record(("d1", "d2", "d3"), "flip", "flip")
    candidates = [(("d1", "d3"), "a"), (("d1", "d2"), "b")]
    hit, calls, _ = scan_candidates(
        evaluator,
        iter(candidates),
        lambda payload, ev: payload if ev.normalized_answer == "flip" else None,
        max_evaluations=10,
        lattice=lattice,
        flips=lambda norm: norm == "flip",
    )
    # The first candidate is an implied flip; verify-on-hit evaluates it
    # for real and rejects it (the implication lied), which both counts
    # a conflict and shuts implication down — the second candidate is
    # then evaluated normally and genuinely flips.  Nothing is ever
    # returned on implication alone.
    assert hit == "b"
    assert calls == 2
    assert lattice.stats.conflicts >= 1  # the lie was caught
    assert not lattice.inference_active


def test_scan_verify_on_hit_confirms_genuine_implied_flip():
    from repro.core import AnswerLattice
    from repro.core.evaluate import scan_candidates

    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(4)]
    context = Context.from_documents("q?", docs)
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: "flip" if "text 1" in texts else "base"
    )
    evaluator = ContextEvaluator(llm, context)
    lattice = AnswerLattice(context, assume_order_insensitive=True)
    lattice.record(("d1",), "flip", "flip")
    lattice.record(("d1", "d2", "d3"), "flip", "flip")
    hit, calls, _ = scan_candidates(
        evaluator,
        iter([(("d1", "d2"), "cf")]),
        lambda payload, ev: payload if ev.normalized_answer == "flip" else None,
        max_evaluations=10,
        lattice=lattice,
        flips=lambda norm: norm == "flip",
    )
    assert hit == "cf"
    assert calls == 1  # the implied flip cost exactly one real call
    assert lattice.stats.verified == 1


class _BatchSizes:
    """Records the size of every batch (or single call) reaching the model."""

    def __init__(self, inner):
        self.inner = inner
        self.sizes = []

    @property
    def name(self):
        return "batch-sizes"

    def generate(self, prompt):
        self.sizes.append(1)
        return self.inner.generate(prompt)

    def generate_batch(self, prompts):
        self.sizes.append(len(prompts))
        return self.inner.generate_batch(prompts)


def test_scan_adaptive_chunk_grows_and_caps():
    from repro.core.evaluate import MAX_ADAPTIVE_BATCH, scan_candidates

    context, llm = _scripted_world(3)

    recorder = _BatchSizes(llm)
    evaluator = ContextEvaluator(recorder, context)
    # 40 distinct orderings, none of which match.
    orderings = [("d0",), ("d1",), ("d2",), ("d0", "d1"), ("d0", "d2"),
                 ("d1", "d2"), ("d0", "d1", "d2")]
    import itertools

    perms = [tuple(p) for p in itertools.permutations(("d0", "d1", "d2"))]
    candidates = [(o, i) for i, o in enumerate(orderings + perms)]
    hit, calls, exhausted = scan_candidates(
        evaluator,
        iter(candidates),
        lambda payload, ev: None,
        max_evaluations=100,
        batch_size=1,
        adaptive=True,
    )
    assert hit is None
    # Chunks grow geometrically from 1 while no hit appears.
    assert recorder.sizes[:3] == [1, 2, 4]
    assert max(recorder.sizes) <= MAX_ADAPTIVE_BATCH


def test_scan_adaptive_resets_on_near_hit():
    from repro.core.evaluate import scan_candidates

    context, llm = _scripted_world(3)

    recorder = _BatchSizes(llm)
    evaluator = ContextEvaluator(recorder, context)
    orderings = [("d0",), ("d1",), ("d2",), ("d0", "d1"), ("d0", "d2"),
                 ("d1", "d2"), ("d0", "d1", "d2"), ("d1", "d0"), ("d2", "d0"),
                 ("d2", "d1"), ("d1", "d0", "d2"), ("d2", "d0", "d1")]
    candidates = [(o, i) for i, o in enumerate(orderings)]
    hit, calls, _ = scan_candidates(
        evaluator,
        iter(candidates),
        lambda payload, ev: None,
        max_evaluations=100,
        batch_size=1,
        adaptive=True,
        near=lambda ev: ev.normalized_answer == "1 sources",  # singletons
    )
    assert hit is None
    # Each singleton flush is a near-hit, pinning the chunk at 1; once
    # the near-hits stop, the chunk grows geometrically again.
    assert recorder.sizes == [1, 1, 1, 1, 2, 4, 2]
