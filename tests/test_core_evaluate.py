"""ContextEvaluator tests (memoization, call counting, batching)."""

from repro.core import ContextEvaluator
from repro.core.context import Context
from repro.llm import ScriptedLLM
from repro.retrieval import Document


def _scripted_world(k=3):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q?", docs)
    llm = ScriptedLLM(answer_fn=lambda q, texts: f"{len(texts)} sources")
    return context, llm


def test_original_and_empty(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    assert evaluator.original().answer == "Roger Federer"
    assert evaluator.empty().answer == "Novak Djokovic"


def test_memoization(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    first = evaluator.evaluate(big_three_context.doc_ids())
    calls = evaluator.llm_calls
    second = evaluator.evaluate(big_three_context.doc_ids())
    assert evaluator.llm_calls == calls  # served from memo
    assert first is second


def test_order_is_part_of_the_key(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    ids = big_three_context.doc_ids()
    a = evaluator.evaluate(ids)
    b = evaluator.evaluate((ids[1], ids[0]) + ids[2:])
    assert evaluator.llm_calls == 2
    assert a.normalized_answer != b.normalized_answer  # UC1 flip


def test_normalized_answer(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    evaluation = evaluator.original()
    assert evaluation.normalized_answer == "roger federer"


def test_subset_evaluation(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    only_h2h = evaluator.evaluate(("bigthree-4-head-to-head",))
    assert only_h2h.answer == "Rafael Nadal"


def test_generation_bypasses_memo(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    evaluator.generation(big_three_context.doc_ids())
    evaluator.generation(big_three_context.doc_ids())
    assert evaluator.llm_calls == 2


def test_generation_returns_attention(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    result = evaluator.generation(big_three_context.doc_ids())
    assert result.attention is not None
    assert len(result.attention.source_totals) == big_three_context.k


def test_evaluate_many_deduplicates_and_aligns():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    orderings = [("d0",), ("d0", "d1"), ("d0",), (), ("d0", "d1")]
    evaluations = evaluator.evaluate_many(orderings)
    assert [e.ordered_doc_ids for e in evaluations] == [
        ("d0",), ("d0", "d1"), ("d0",), (), ("d0", "d1"),
    ]
    assert [e.answer for e in evaluations] == [
        "1 sources", "2 sources", "1 sources", "0 sources", "2 sources",
    ]
    # three distinct orderings -> three real calls, duplicates free
    assert evaluator.llm_calls == 3
    assert llm.calls == 3


def test_evaluate_many_consults_and_fills_memo():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    evaluator.evaluate(("d0",))
    evaluator.evaluate_many([("d0",), ("d1",)])
    assert evaluator.llm_calls == 2  # only ("d1",) was a miss
    calls = evaluator.llm_calls
    # single-path evaluation now hits the batch-filled memo
    assert evaluator.evaluate(("d1",)).answer == "1 sources"
    assert evaluator.llm_calls == calls


def test_is_memoized_and_memo_size():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    assert not evaluator.is_memoized(("d0",))
    evaluator.evaluate(("d0",))
    assert evaluator.is_memoized(("d0",))
    assert evaluator.is_memoized(["d0"])  # any sequence form
    assert evaluator.memo_size == 1


def test_prime_seeds_memo_from_external_generation():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    generation = evaluator.generation(context.doc_ids())  # fresh, 1 call
    evaluator.prime(context.doc_ids(), generation)
    calls = evaluator.llm_calls
    evaluation = evaluator.original()
    assert evaluator.llm_calls == calls  # memo hit, no new call
    assert evaluation.answer == generation.answer


def test_evaluate_many_empty_is_free():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    assert evaluator.evaluate_many([]) == []
    assert evaluator.llm_calls == 0
