"""ContextEvaluator tests (memoization, call counting)."""

from repro.core import ContextEvaluator


def test_original_and_empty(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    assert evaluator.original().answer == "Roger Federer"
    assert evaluator.empty().answer == "Novak Djokovic"


def test_memoization(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    first = evaluator.evaluate(big_three_context.doc_ids())
    calls = evaluator.llm_calls
    second = evaluator.evaluate(big_three_context.doc_ids())
    assert evaluator.llm_calls == calls  # served from memo
    assert first is second


def test_order_is_part_of_the_key(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    ids = big_three_context.doc_ids()
    a = evaluator.evaluate(ids)
    b = evaluator.evaluate((ids[1], ids[0]) + ids[2:])
    assert evaluator.llm_calls == 2
    assert a.normalized_answer != b.normalized_answer  # UC1 flip


def test_normalized_answer(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    evaluation = evaluator.original()
    assert evaluation.normalized_answer == "roger federer"


def test_subset_evaluation(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    only_h2h = evaluator.evaluate(("bigthree-4-head-to-head",))
    assert only_h2h.answer == "Rafael Nadal"


def test_generation_bypasses_memo(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    evaluator.generation(big_three_context.doc_ids())
    evaluator.generation(big_three_context.doc_ids())
    assert evaluator.llm_calls == 2


def test_generation_returns_attention(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    result = evaluator.generation(big_three_context.doc_ids())
    assert result.attention is not None
    assert len(result.attention.source_totals) == big_three_context.k
