"""Property-based tests for the text-processing substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textproc import (
    STOPWORDS,
    Tokenizer,
    normalize_answer,
    stem,
    word_spans,
)

text_strategy = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    max_size=200,
)
word_strategy = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=20)


@given(text_strategy)
def test_normalize_idempotent(text):
    once = normalize_answer(text)
    assert normalize_answer(once) == once


@given(text_strategy)
def test_normalize_output_shape(text):
    result = normalize_answer(text)
    assert result == result.strip()
    assert "  " not in result
    assert result == result.lower()


@given(st.text(alphabet=string.ascii_letters + string.digits + " .,!?'", max_size=200))
def test_normalize_case_insensitive(text):
    assert normalize_answer(text.upper()) == normalize_answer(text.lower())


@given(word_strategy)
def test_stem_never_longer(word):
    assert len(stem(word)) <= len(word)
    assert stem(word)  # never empty for non-empty input


@given(word_strategy)
def test_stem_deterministic(word):
    assert stem(word) == stem(word)


@given(text_strategy)
def test_word_spans_within_bounds(text):
    for span in word_spans(text):
        assert 0 <= span.start < span.end <= len(text)
        assert span.text


@given(text_strategy)
def test_word_spans_ordered_and_disjoint(text):
    spans = word_spans(text)
    for left, right in zip(spans, spans[1:]):
        assert left.end <= right.start


@given(text_strategy)
@settings(max_examples=50)
def test_tokenizer_excludes_stopwords(text):
    terms = Tokenizer(stem=False).tokenize(text)
    assert not (set(terms) & STOPWORDS)


@given(text_strategy)
@settings(max_examples=50)
def test_tokenizer_lowercases(text):
    for term in Tokenizer(stem=False).tokenize(text):
        assert term == term.lower()


@given(st.lists(word_strategy, min_size=1, max_size=20))
def test_tokenizer_subset_of_unfiltered(words):
    text = " ".join(words)
    filtered = Tokenizer(stem=False).tokenize(text)
    unfiltered = Tokenizer(stem=False, remove_stopwords=False).tokenize(text)
    assert len(filtered) <= len(unfiltered)
    iterator = iter(unfiltered)
    assert all(term in iterator for term in filtered)  # order-preserving subsequence
