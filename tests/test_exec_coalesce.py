"""Micro-batch window tests: CoalescingBackend merges cross-request batches."""

from __future__ import annotations

import asyncio
import threading
import time
from typing import List, Sequence

import pytest

from repro.errors import ConfigError, GenerationError
from repro.exec import CoalescingBackend, SerialBackend, ThreadedBackend
from repro.llm.base import GenerationResult

WINDOW_MS = 120.0


class EchoBatchLLM:
    """Native-batch model that records every batch it receives."""

    name = "echo-batch-llm"

    def __init__(self, fail: bool = False) -> None:
        self.fail = fail
        self.batches: List[List[str]] = []
        self._lock = threading.Lock()

    def generate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        with self._lock:
            self.batches.append(list(prompts))
        if self.fail:
            raise GenerationError("window inner exploded")
        return [
            GenerationResult(answer=f"answer:{p}", prompt=p) for p in prompts
        ]


def _submit_concurrently(backend, model, batches):
    """Run each prompt list through backend.run on its own thread."""
    barrier = threading.Barrier(len(batches))
    results = [None] * len(batches)
    errors = [None] * len(batches)

    def worker(i, prompts):
        barrier.wait()
        try:
            results[i] = backend.run(model, prompts)
        except BaseException as error:  # noqa: BLE001 - recorded for asserts
            errors[i] = error

    threads = [
        threading.Thread(target=worker, args=(i, b)) for i, b in enumerate(batches)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    return results, errors


def test_window_merges_concurrent_submissions_into_one_flush():
    model = EchoBatchLLM()
    backend = CoalescingBackend(SerialBackend(), window_ms=WINDOW_MS)
    results, errors = _submit_concurrently(
        backend, model, [["a"], ["b"], ["c"]]
    )
    assert errors == [None] * 3
    assert len(model.batches) == 1  # one merged native batch
    assert sorted(model.batches[0]) == ["a", "b", "c"]
    assert [r.answer for r in results[0]] == ["answer:a"]
    assert [r.answer for r in results[1]] == ["answer:b"]
    assert [r.answer for r in results[2]] == ["answer:c"]
    stats = backend.window_stats
    assert stats.submissions == 3
    assert stats.windows == 1
    assert stats.merged_windows == 1
    assert stats.max_flush == 3
    assert stats.mean_flush_size == 3.0
    assert backend.inner.stats.batches == 1


def test_window_dedups_overlapping_prompts_and_realigns():
    model = EchoBatchLLM()
    backend = CoalescingBackend(SerialBackend(), window_ms=WINDOW_MS)
    results, errors = _submit_concurrently(
        backend, model, [["x", "y"], ["y", "z"]]
    )
    assert errors == [None, None]
    assert len(model.batches) == 1
    assert len(model.batches[0]) == 3  # y dispatched once
    assert [r.answer for r in results[0]] == ["answer:x", "answer:y"]
    assert [r.answer for r in results[1]] == ["answer:y", "answer:z"]


def test_sequential_submissions_open_separate_windows():
    model = EchoBatchLLM()
    backend = CoalescingBackend(SerialBackend(), window_ms=20.0)
    first = backend.run(model, ["a"])
    second = backend.run(model, ["b"])
    assert [r.answer for r in first] == ["answer:a"]
    assert [r.answer for r in second] == ["answer:b"]
    assert backend.window_stats.windows == 2
    assert backend.window_stats.merged_windows == 0


def test_window_error_propagates_to_every_submission():
    model = EchoBatchLLM(fail=True)
    backend = CoalescingBackend(SerialBackend(), window_ms=WINDOW_MS)
    results, errors = _submit_concurrently(backend, model, [["a"], ["b"]])
    assert results == [None, None]
    assert all(isinstance(e, GenerationError) for e in errors)
    assert errors[0] is errors[1]  # one flush, one failure domain
    # The window registry is clean: the next submission flushes fresh.
    model.fail = False
    assert [r.answer for r in backend.run(model, ["c"])] == ["answer:c"]


def test_empty_submission_short_circuits():
    model = EchoBatchLLM()
    backend = CoalescingBackend(SerialBackend(), window_ms=WINDOW_MS)
    assert backend.run(model, []) == []
    assert model.batches == []
    assert backend.window_stats.submissions == 0


def test_cancelled_async_waiter_refunds_its_prompts():
    model = EchoBatchLLM()
    backend = CoalescingBackend(SerialBackend(), window_ms=150.0)

    async def scenario():
        task = asyncio.ensure_future(backend.arun(model, ["doomed"]))
        await asyncio.sleep(0.02)  # inside the window, before the flush
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        await asyncio.sleep(0.3)  # let the timer fire

    asyncio.run(scenario())
    assert backend.window_stats.refunded == 1
    assert backend.window_stats.windows == 0  # nothing left to flush
    assert model.batches == []


def test_flush_completes_for_survivors_when_a_waiter_cancels():
    model = EchoBatchLLM()
    backend = CoalescingBackend(SerialBackend(), window_ms=150.0)

    async def scenario():
        doomed = asyncio.ensure_future(backend.arun(model, ["dead"]))
        survivor = asyncio.ensure_future(backend.arun(model, ["alive"]))
        await asyncio.sleep(0.02)
        doomed.cancel()
        with pytest.raises(asyncio.CancelledError):
            await doomed
        return await survivor

    results = asyncio.run(scenario())
    assert [r.answer for r in results] == ["answer:alive"]
    assert model.batches == [["alive"]]  # the refunded prompt never dispatched
    assert backend.window_stats.refunded == 1
    assert backend.window_stats.windows == 1


def test_window_preserves_inner_capacity_timeout_and_name():
    inner = ThreadedBackend(4, timeout=2.5)
    backend = CoalescingBackend(inner, window_ms=10.0)
    assert backend.capacity == 4
    assert backend.timeout == 2.5
    assert backend.name == "coalesce:10ms+threaded:4"


@pytest.mark.parametrize("bad", [0, -1, -0.5, None])
def test_invalid_window_rejected(bad):
    with pytest.raises(ConfigError):
        CoalescingBackend(SerialBackend(), window_ms=bad)


def test_per_prompt_timeout_still_enforced_through_the_window():
    from fakes import SlowPromptLLM

    from repro.errors import GenerationTimeoutError

    model = SlowPromptLLM(hang_seconds=5.0, offer_async=False)
    backend = CoalescingBackend(SerialBackend(timeout=0.2), window_ms=30.0)
    results, errors = _submit_concurrently(
        backend, model, [["fine"], ["HANG this one"]]
    )
    # The hung prompt fails the merged flush after its sibling completes;
    # both submissions observe the same timeout error (shared failure
    # domain), and it names only the hung prompt.
    assert all(isinstance(e, GenerationTimeoutError) for e in errors)
    assert errors[0].prompts == ("HANG this one",)
