"""Salience and stability metric tests."""

import math

import pytest

from repro.core import (
    ContextEvaluator,
    answer_entropy,
    order_stability,
    positional_sensitivity,
    select_permutations,
    source_salience,
)
from repro.errors import ConfigError


@pytest.fixture()
def big_three_insights(big_three_engine, big_three):
    return big_three_engine.combination_insights(big_three.query)


def test_salience_identifies_decisive_source(big_three_insights):
    scores = source_salience(big_three_insights)
    assert scores[0].doc_id == "bigthree-1-match-wins"
    assert scores[0].contrast == pytest.approx(1.0)
    assert scores[0].answer == "Roger Federer"
    # every other source has near-zero or negative influence on Federer
    for score in scores[1:]:
        assert score.contrast < 0.5


def test_salience_scores_sorted(big_three_insights):
    scores = source_salience(big_three_insights)
    contrasts = [s.contrast for s in scores]
    assert contrasts == sorted(contrasts, reverse=True)


def test_salience_support_counts(big_three_insights):
    scores = source_salience(big_three_insights)
    for score in scores:
        present, absent = score.support
        assert present + absent == big_three_insights.total
        assert present == 8  # each source appears in half of 2^4 combos,
        assert absent == 7   # minus the excluded empty combination


def test_salience_for_specific_answer(big_three_insights):
    scores = source_salience(big_three_insights, answer="Rafael Nadal")
    best = scores[0]
    assert best.doc_id == "bigthree-4-head-to-head"
    assert best.contrast > 0


def test_salience_unknown_answer_rejected(big_three_insights):
    with pytest.raises(ConfigError):
        source_salience(big_three_insights, answer="Serena Williams")


def test_salience_rates_bounded(big_three_insights):
    for answer_slice in big_three_insights.pie():
        for score in source_salience(big_three_insights, answer=answer_slice.answer):
            assert 0.0 <= score.present_rate <= 1.0
            assert 0.0 <= score.absent_rate <= 1.0
            assert -1.0 <= score.contrast <= 1.0


def test_entropy_ambiguous_case(big_three_insights):
    entropy = answer_entropy(big_three_insights)
    assert entropy > 0.0
    assert entropy <= math.log2(len(big_three_insights.groups)) + 1e-12


def test_entropy_stable_case(potya_engine, player_of_the_year):
    insights = potya_engine.permutation_insights(
        player_of_the_year.query, sample_size=20
    )
    assert answer_entropy(insights) == 0.0


def test_order_stability_fragile_context(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    perturbations = select_permutations(big_three_context)
    stability = order_stability(evaluator, perturbations)
    assert not stability.is_stable
    assert 0.0 < stability.stable_fraction < 1.0
    assert stability.flip_tau == pytest.approx(1 - 2 / 6)
    assert stability.num_permutations == 24


def test_order_stability_stable_context(potya_engine, player_of_the_year):
    context = potya_engine.retrieve(player_of_the_year.query)
    evaluator = ContextEvaluator(potya_engine.llm, context)
    perturbations = select_permutations(context, sample_size=15, seed=1)
    stability = order_stability(evaluator, perturbations)
    assert stability.is_stable
    assert stability.stable_fraction == 1.0
    assert stability.flip_tau is None


def test_order_stability_requires_permutations(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    with pytest.raises(ConfigError):
        order_stability(evaluator, [])


def test_positional_sensitivity_us_open(us_open_engine, us_open):
    """For the most-recent question, some position must carry signal."""
    insights = us_open_engine.permutation_insights(us_open.query, sample_size=80)
    sensitivity = positional_sensitivity(insights)
    assert set(sensitivity) == set(range(5))
    assert all(0.0 <= value <= 1.0 for value in sensitivity.values())
    assert max(sensitivity.values()) > 0.1


def test_positional_sensitivity_stable_context(potya_engine, player_of_the_year):
    insights = potya_engine.permutation_insights(
        player_of_the_year.query, sample_size=15
    )
    sensitivity = positional_sensitivity(insights)
    assert all(value == 0.0 for value in sensitivity.values())


def test_engine_salience_facade(big_three_engine, big_three):
    scores = big_three_engine.source_salience(big_three.query)
    assert scores[0].doc_id == "bigthree-1-match-wins"


def test_engine_order_stability_facade(big_three_engine, big_three):
    stability = big_three_engine.order_stability(big_three.query, sample_size=20)
    assert stability.num_permutations == 20
