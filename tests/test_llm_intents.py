"""Question-intent parsing tests."""

import pytest

from repro.llm import QuestionIntent, classify_intent, parse_question


@pytest.mark.parametrize(
    "question,intent",
    [
        ("Who is the best tennis player?", QuestionIntent.SUPERLATIVE),
        ("Who is the greatest of all time?", QuestionIntent.SUPERLATIVE),
        ("Which is the top ranked team?", QuestionIntent.SUPERLATIVE),
        ("Who is the most recent champion?", QuestionIntent.MOST_RECENT),
        ("Who is the latest winner?", QuestionIntent.MOST_RECENT),
        ("Who is the current champion?", QuestionIntent.MOST_RECENT),
        ("How many times did Ann Lee win?", QuestionIntent.COUNT),
        ("How many titles does she hold?", QuestionIntent.COUNT),
        ("Who won the 2019 final?", QuestionIntent.FACTOID),
        ("What is the capital of France?", QuestionIntent.FACTOID),
    ],
)
def test_classify_intent(question, intent):
    assert classify_intent(question) == intent


@pytest.mark.parametrize(
    "question",
    [
        "Who was the first winner of the cup?",
        "Who was the earliest champion?",
        "Who won the inaugural tournament?",
    ],
)
def test_earliest_intent(question):
    assert classify_intent(question) == QuestionIntent.EARLIEST


def test_most_recent_beats_earliest():
    question = "Who is the most recent first-round winner?"
    assert classify_intent(question) == QuestionIntent.MOST_RECENT


def test_count_beats_superlative():
    assert classify_intent("How many times was she the best?") == QuestionIntent.COUNT


def test_most_recent_beats_superlative():
    question = "Who is the most recent best-in-show winner?"
    assert classify_intent(question) == QuestionIntent.MOST_RECENT


def test_parse_subject_extraction():
    parsed = parse_question("How many times did Novak Djokovic win the award?")
    assert parsed.intent == QuestionIntent.COUNT
    assert parsed.subject == "novak djokovic"


def test_parse_subject_multiword_connector():
    parsed = parse_question("How many times did Vincent van Gogh paint sunflowers?")
    assert parsed.subject == "vincent van gogh"


def test_parse_subject_after_auxiliary():
    parsed = parse_question("How many rings does Saturn have?")
    assert parsed.subject == "saturn"


def test_parse_subject_absent():
    parsed = parse_question("How many wins happened last year?")
    assert parsed.subject is None


def test_parse_year_range():
    parsed = parse_question("How many wins between 2010 and 2019?")
    assert parsed.year_range == (2010, 2019)


def test_parse_year_range_from_to():
    parsed = parse_question("How many wins from 2012 to 2015?")
    assert parsed.year_range == (2012, 2015)


def test_parse_year_range_reversed_normalized():
    parsed = parse_question("How many wins between 2019 and 2010?")
    assert parsed.year_range == (2010, 2019)


def test_parse_no_year_range():
    assert parse_question("Who is the best player?").year_range is None


def test_parse_terms_analyzed():
    parsed = parse_question("Who is the best tennis player?")
    assert "tenni" in parsed.terms
    assert "player" in parsed.terms
    assert "the" not in parsed.terms


def test_parsed_question_preserves_text():
    question = "Who is the best?"
    assert parse_question(question).text == question
