"""Greedy combination counterfactual tests."""

import pytest

from repro.core import (
    Context,
    ContextEvaluator,
    SearchDirection,
    greedy_combination_counterfactual,
    search_combination_counterfactual,
)
from repro.datasets import make_timeline_world
from repro.errors import SearchBudgetError
from repro.llm import ScriptedLLM, SimulatedLLM
from repro.retrieval import Document


def _context(k=4, question="what is the answer?"):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    return Context.from_documents(question, docs)


def _uniform_scores(context):
    return {doc_id: 1.0 for doc_id in context.doc_ids()}


def test_greedy_matches_exhaustive_on_use_case_1(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    greedy = greedy_combination_counterfactual(evaluator, scores)
    exhaustive = search_combination_counterfactual(evaluator, scores)
    assert greedy.found and exhaustive.found
    assert greedy.counterfactual.changed_sources == exhaustive.counterfactual.changed_sources
    assert greedy.counterfactual.new_answer == exhaustive.counterfactual.new_answer


def test_greedy_result_is_minimal():
    """No proper subset of the greedy set flips the answer."""
    context = _context(5)
    # flips iff both d1 and d3 are removed
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: (
            "flipped" if "text 1" not in texts and "text 3" not in texts else "base"
        )
    )
    evaluator = ContextEvaluator(llm, context)
    result = greedy_combination_counterfactual(evaluator, _uniform_scores(context))
    assert result.found
    assert sorted(result.counterfactual.changed_sources) == ["d1", "d3"]


def test_greedy_linear_llm_calls():
    """Grow + shrink stays within 2k evaluations even when the flip
    needs most of the context removed."""
    k = 12
    context = _context(k)
    # flips only when fewer than 3 sources remain
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: "flipped" if len(texts) < 3 else "base"
    )
    evaluator = ContextEvaluator(llm, context)
    result = greedy_combination_counterfactual(evaluator, _uniform_scores(context))
    assert result.found
    assert result.counterfactual.size == k - 2
    assert result.num_evaluations <= 2 * k


def test_greedy_bottom_up_citation():
    world = make_timeline_world(12, seed=5)
    from repro import Rage, RageConfig

    rage = Rage.from_corpus(
        world.corpus,
        SimulatedLLM(knowledge=world.knowledge),
        config=RageConfig(k=12, max_evaluations=4000),
    )
    context = rage.retrieve(world.query)
    evaluator = ContextEvaluator(rage.llm, context)
    scores = rage.relevance_scores(context)
    result = greedy_combination_counterfactual(
        evaluator, scores, direction=SearchDirection.BOTTOM_UP
    )
    assert result.found
    # the citation set contains exactly the subject's winning years
    cited_years = {
        int(doc_id.rsplit("-", 1)[1]) for doc_id in result.counterfactual.changed_sources
    }
    assert cited_years == set(world.subject_years)
    # linear cost, far below the exhaustive C(12, 1..m) budget
    assert result.num_evaluations <= 24


def test_greedy_no_flip_exists():
    context = _context(3)
    llm = ScriptedLLM(default="constant")
    evaluator = ContextEvaluator(llm, context)
    result = greedy_combination_counterfactual(evaluator, _uniform_scores(context))
    assert not result.found
    assert result.num_evaluations <= 3


def test_greedy_budget_exhaustion():
    context = _context(8)
    llm = ScriptedLLM(answer_fn=lambda q, texts: "flipped" if not texts else "base")
    evaluator = ContextEvaluator(llm, context)
    result = greedy_combination_counterfactual(
        evaluator, _uniform_scores(context), max_evaluations=2
    )
    assert not result.found
    assert result.budget_exhausted


def test_greedy_invalid_budget(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    with pytest.raises(SearchBudgetError):
        greedy_combination_counterfactual(evaluator, {}, max_evaluations=0)


def test_greedy_target_answer(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = greedy_combination_counterfactual(
        evaluator, scores, target_answer="Novak Djokovic"
    )
    assert result.found
    assert result.counterfactual.new_answer == "Novak Djokovic"
