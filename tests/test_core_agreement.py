"""Source agreement/disagreement analysis tests."""

import pytest

from repro.core import (
    Context,
    PairVerdict,
    analyze_agreement,
    render_agreement,
)
from repro.retrieval import Document


def _context(*texts):
    docs = [
        Document(doc_id=f"d{i}", text=text) for i, text in enumerate(texts)
    ]
    return Context.from_documents("q?", docs)


def test_dated_conflict_detected():
    report = analyze_agreement(
        _context(
            "The 2022 sandcastle cup was won by Ann Dune.",
            "The 2022 sandcastle cup was won by Bay Shore.",
        )
    )
    assert not report.is_consistent
    assert report.inconsistent_sources() == ["d0", "d1"]
    pair = report.pairs[0]
    assert pair.verdict is PairVerdict.CONFLICT


def test_dated_agreement_detected():
    report = analyze_agreement(
        _context(
            "The 2022 sandcastle cup was won by Ann Dune.",
            "Ann Dune won the sandcastle cup in 2022.",
        )
    )
    assert report.is_consistent
    assert report.pairs[0].verdict is PairVerdict.AGREE


def test_different_years_are_independent():
    report = analyze_agreement(
        _context(
            "The 2021 sandcastle cup was won by Ann Dune.",
            "The 2022 sandcastle cup was won by Bay Shore.",
        )
    )
    assert report.pairs[0].verdict is PairVerdict.INDEPENDENT
    assert report.is_consistent


def test_different_events_same_year_independent():
    report = analyze_agreement(
        _context(
            "The 2022 sandcastle cup was won by Ann Dune.",
            "The 2022 pie eating trophy was won by Bay Shore.",
        )
    )
    assert report.pairs[0].verdict is PairVerdict.INDEPENDENT


def test_superlative_conflict():
    report = analyze_agreement(
        _context(
            "Robin Hood is widely considered the best archer in the kingdom.",
            "Will Scarlet ranks first with 99 archer tournament wins in the kingdom.",
        )
    )
    assert report.pairs[0].verdict is PairVerdict.CONFLICT


def test_superlative_agreement_across_kinds():
    report = analyze_agreement(
        _context(
            "Robin Hood is widely considered the best archer in the kingdom.",
            "Robin Hood ranks first with 120 archer tournament wins in the kingdom.",
        )
    )
    assert report.pairs[0].verdict is PairVerdict.AGREE


def test_off_topic_superlatives_independent():
    report = analyze_agreement(
        _context(
            "Robin Hood is widely considered the best archer in the kingdom.",
            "Tess Tube is widely considered the best chemist in the laboratory.",
        )
    )
    assert report.pairs[0].verdict is PairVerdict.INDEPENDENT


def test_conflict_outweighs_agreement():
    """One contradiction marks the pair conflicting even with agreements."""
    report = analyze_agreement(
        _context(
            "Ann Dune won the sandcastle cup in 2021. "
            "Ann Dune won the sandcastle cup in 2022.",
            "Ann Dune won the sandcastle cup in 2021. "
            "Bay Shore won the sandcastle cup in 2022.",
        )
    )
    pair = report.pairs[0]
    assert pair.verdict is PairVerdict.CONFLICT
    verdicts = {match.verdict for match in pair.matches}
    assert verdicts == {PairVerdict.AGREE, PairVerdict.CONFLICT}


def test_big_three_sources_disagree(big_three, big_three_engine):
    """Use Case 1's subjective sources disagree about who is best."""
    context = big_three_engine.retrieve(big_three.query)
    report = analyze_agreement(context)
    assert not report.is_consistent
    assert "bigthree-1-match-wins" in report.inconsistent_sources()
    # match-wins (Federer) conflicts with grand-slams (Djokovic)
    pair = next(
        p
        for p in report.pairs
        if {p.left_doc_id, p.right_doc_id}
        == {"bigthree-1-match-wins", "bigthree-2-grand-slams"}
    )
    assert pair.verdict is PairVerdict.CONFLICT


def test_us_open_sources_consistent(us_open, us_open_engine):
    """Use Case 2's yearly sources never contradict (different years)."""
    context = us_open_engine.retrieve(us_open.query)
    assert analyze_agreement(context).is_consistent


def test_render_agreement_conflicting():
    report = analyze_agreement(
        _context(
            "The 2022 sandcastle cup was won by Ann Dune.",
            "The 2022 sandcastle cup was won by Bay Shore.",
        )
    )
    text = render_agreement(report)
    assert "Inconsistent sources detected" in text
    assert "'Ann Dune' vs 'Bay Shore' (2022)" in text


def test_render_agreement_consistent():
    report = analyze_agreement(
        _context("The 2022 sandcastle cup was won by Ann Dune.")
    )
    assert "mutually consistent" in render_agreement(report)


def test_render_deduplicates_equivalent_claims():
    report = analyze_agreement(
        _context(
            "Robin Hood is widely considered the best archer in the kingdom. "
            "Robin Hood ranks first with 120 archer contest wins in the kingdom.",
            "Will Scarlet is widely considered the best archer in the kingdom.",
        )
    )
    text = render_agreement(report)
    line = "'Robin Hood' vs 'Will Scarlet' (superlative)"
    assert text.count(line) == 1


def test_cli_agreement(capsys):
    from repro.app.cli import main

    assert main(["agreement", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "Disagreements:" in out
    assert main(["agreement", "--use-case", "us_open"]) == 0
    assert "mutually consistent" in capsys.readouterr().out
