"""Property-based tests for the combinatorial substrate."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics import (
    brute_force_kbest,
    count_inversions,
    fisher_yates_shuffle,
    kbest_assignments_ch,
    kbest_assignments_murty,
    kendall_tau,
    ordered_combinations,
    sample_combinations,
    sample_permutations,
    solve_assignment,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(st.lists(st.integers(), min_size=1, max_size=30, unique=True), seeds)
def test_shuffle_is_permutation(items, seed):
    shuffled = fisher_yates_shuffle(items, random.Random(seed))
    assert sorted(shuffled) == sorted(items)


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40), seeds)
def test_sample_permutations_valid(k, s, seed):
    items = list(range(k))
    perms = sample_permutations(items, s, random.Random(seed))
    assert len(perms) == min(s, math.factorial(k))
    assert len(set(perms)) == len(perms)
    for perm in perms:
        assert sorted(perm) == items


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=50), seeds)
def test_sample_combinations_valid(k, s, seed):
    items = [f"i{j}" for j in range(k)]
    combos = sample_combinations(items, s, random.Random(seed))
    assert len(set(combos)) == len(combos)
    for combo in combos:
        assert list(combo) == [i for i in items if i in set(combo)]


@given(st.permutations(list(range(8))))
def test_kendall_tau_bounds(perm):
    tau = kendall_tau(list(range(8)), list(perm))
    assert -1.0 <= tau <= 1.0


@given(st.permutations(list(range(7))))
def test_kendall_tau_symmetry(perm):
    reference = list(range(7))
    assert kendall_tau(reference, list(perm)) == kendall_tau(list(perm), reference)


@given(st.permutations(list(range(7))))
def test_kendall_tau_reversal_antisymmetry(perm):
    reference = list(range(7))
    tau = kendall_tau(reference, list(perm))
    tau_reversed = kendall_tau(list(reversed(reference)), list(perm))
    assert abs(tau + tau_reversed) < 1e-12


@given(st.lists(st.integers(min_value=-100, max_value=100), max_size=50))
def test_inversions_bounds(values):
    n = len(values)
    assert 0 <= count_inversions(values) <= n * (n - 1) // 2


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_hungarian_optimal_vs_bruteforce(n, seed):
    rng = random.Random(seed)
    matrix = [[rng.uniform(-10, 10) for _ in range(n)] for _ in range(n)]
    solution = solve_assignment(matrix)
    best = brute_force_kbest(matrix, 1)[0]
    assert abs(solution.cost - best.cost) < 1e-9


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_kbest_matches_bruteforce(n, s, seed):
    rng = random.Random(seed)
    matrix = [[rng.uniform(0, 10) for _ in range(n)] for _ in range(n)]
    expected = [round(r.cost, 8) for r in brute_force_kbest(matrix, s)]
    ch = [round(r.cost, 8) for r in kbest_assignments_ch(matrix, s)]
    murty = [round(r.cost, 8) for r in kbest_assignments_murty(matrix, s)]
    assert ch == expected
    assert murty == expected


@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_kbest_integer_ties(n, seed):
    rng = random.Random(seed)
    matrix = [[float(rng.randint(0, 2)) for _ in range(n)] for _ in range(n)]
    s = math.factorial(n)
    expected = [round(r.cost, 8) for r in brute_force_kbest(matrix, s)]
    assert [round(r.cost, 8) for r in kbest_assignments_ch(matrix, s)] == expected
    assert [round(r.cost, 8) for r in kbest_assignments_murty(matrix, s)] == expected


@given(
    st.dictionaries(
        st.sampled_from([f"d{i}" for i in range(6)]),
        st.floats(min_value=0, max_value=1, allow_nan=False),
        min_size=6,
        max_size=6,
    )
)
@settings(max_examples=30, deadline=None)
def test_ordered_combinations_invariants(scores):
    items = sorted(scores)
    combos = list(ordered_combinations(items, scores=scores))
    sizes = [len(c) for c in combos]
    assert sizes == sorted(sizes)
    # within each size, estimated relevance is non-increasing
    for size in set(sizes):
        estimates = [
            sum(scores[d] for d in combo) for combo in combos if len(combo) == size
        ]
        assert all(a >= b - 1e-12 for a, b in zip(estimates, estimates[1:]))
    # complete and duplicate-free
    assert len(set(combos)) == len(combos) == 2 ** len(items) - 1
