"""Context and perturbation value-object tests."""

import pytest

from repro.core import CombinationPerturbation, Context, PermutationPerturbation
from repro.errors import PerturbationError
from repro.retrieval import Document


def _context(k=4):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    return Context.from_documents("query?", docs, scores=[float(k - i) for i in range(k)])


def test_context_accessors():
    context = _context()
    assert context.k == 4
    assert context.doc_ids() == ("d0", "d1", "d2", "d3")
    assert context.texts() == ["text 0", "text 1", "text 2", "text 3"]
    assert context.position_of("d2") == 2
    assert "d1" in context
    assert "zz" not in context
    assert context.retrieval_scores()["d0"] == 4.0


def test_context_duplicate_sources_rejected():
    doc = Document(doc_id="d", text="x")
    with pytest.raises(PerturbationError):
        Context.from_documents("q", [doc, doc])


def test_context_scores_mismatch_rejected():
    docs = [Document(doc_id="d0", text="x")]
    with pytest.raises(PerturbationError):
        Context.from_documents("q", docs, scores=[1.0, 2.0])


def test_context_unknown_source():
    with pytest.raises(PerturbationError):
        _context().position_of("nope")


def test_texts_for_order():
    context = _context()
    assert context.texts_for(("d3", "d0")) == ["text 3", "text 0"]


def test_combination_apply_keeps_order():
    context = _context()
    perturbation = CombinationPerturbation(kept=("d0", "d2"))
    assert perturbation.apply(context) == ("d0", "d2")
    assert perturbation.size == 2


def test_combination_rejects_wrong_order():
    context = _context()
    with pytest.raises(PerturbationError):
        CombinationPerturbation(kept=("d2", "d0")).apply(context)


def test_combination_rejects_duplicates():
    context = _context()
    with pytest.raises(PerturbationError):
        CombinationPerturbation(kept=("d0", "d0")).apply(context)


def test_combination_rejects_unknown():
    context = _context()
    with pytest.raises(PerturbationError):
        CombinationPerturbation(kept=("d0", "zz")).apply(context)


def test_combination_removed_complement():
    context = _context()
    perturbation = CombinationPerturbation(kept=("d1", "d3"))
    assert perturbation.removed(context) == ("d0", "d2")


def test_combination_from_removal():
    context = _context()
    perturbation = CombinationPerturbation.from_removal(context, ["d1"])
    assert perturbation.kept == ("d0", "d2", "d3")
    with pytest.raises(PerturbationError):
        CombinationPerturbation.from_removal(context, ["zz"])


def test_empty_combination_allowed():
    context = _context()
    perturbation = CombinationPerturbation(kept=())
    assert perturbation.apply(context) == ()
    assert perturbation.removed(context) == context.doc_ids()


def test_permutation_apply():
    context = _context()
    order = ("d3", "d2", "d1", "d0")
    assert PermutationPerturbation(order=order).apply(context) == order


def test_permutation_must_cover_context():
    context = _context()
    with pytest.raises(PerturbationError):
        PermutationPerturbation(order=("d0", "d1")).apply(context)
    with pytest.raises(PerturbationError):
        PermutationPerturbation(order=("d0", "d1", "d2", "zz")).apply(context)


def test_permutation_identity_detection():
    context = _context()
    assert PermutationPerturbation(order=context.doc_ids()).is_identity(context)
    assert not PermutationPerturbation(order=("d1", "d0", "d2", "d3")).is_identity(context)


def test_permutation_moved_sources():
    context = _context()
    perturbation = PermutationPerturbation(order=("d1", "d0", "d2", "d3"))
    assert perturbation.moved_sources(context) == ["d1", "d0"]


def test_from_retrieval(tiny_searcher):
    result = tiny_searcher.search("quick fox", k=3)
    context = Context.from_retrieval(result)
    assert context.query == "quick fox"
    assert context.k == len(result)
    assert list(context.doc_ids()) == result.doc_ids()
