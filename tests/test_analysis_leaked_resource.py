"""``leaked-resource`` interprocedural cases.

Single-function positives/negatives live in test_analysis_checkers.py
(carried over from the old syntactic ``acquire-release`` rule); this
suite pins what the call-graph upgrade buys: releases performed by
*callees* on cleanup paths now count.
"""

from __future__ import annotations

import textwrap

from repro.analysis.engine import analyze_sources


def findings(*items, rule="leaked-resource"):
    result = analyze_sources(
        [(rel, textwrap.dedent(text)) for rel, text in items]
    )
    return [f for f in result.findings if f.rule == rule]


def test_release_in_cleanup_path_callee_is_clean():
    # The old syntactic rule flagged this: reserve() with no literal
    # cancel() in the same function.  The call graph sees that
    # _finish() cancels, and _finish is called from a finally block.
    assert not findings(
        (
            "src/repro/llm/x.py",
            """
            class Client:
                def __init__(self, bucket):
                    self.bucket = bucket
                    self.handle = None

                def send(self, payload):
                    self.handle = self.bucket.reserve()
                    try:
                        return self._post(payload)
                    except Exception:
                        self._finish()
                        raise

                def _post(self, payload):
                    return payload

                def _finish(self):
                    self.handle.cancel()
            """,
        )
    )


def test_release_two_hops_down_is_clean():
    assert not findings(
        (
            "src/repro/llm/x.py",
            """
            class Client:
                def __init__(self, bucket):
                    self.bucket = bucket
                    self.handle = None

                def send(self, payload):
                    self.handle = self.bucket.reserve()
                    try:
                        return payload
                    finally:
                        self._teardown()

                def _teardown(self):
                    self._finish()

                def _finish(self):
                    self.handle.cancel()
            """,
        )
    )


def test_release_in_callee_off_cleanup_path_still_fires():
    # The callee cancels, but it is only called on the straight-line
    # path — an exception mid-flight never reaches it.
    found = findings(
        (
            "src/repro/llm/x.py",
            """
            class Client:
                def __init__(self, bucket):
                    self.bucket = bucket
                    self.handle = None

                def send(self, payload):
                    self.handle = self.bucket.reserve()
                    result = self._post(payload)
                    self._finish()
                    return result

                def _post(self, payload):
                    if not payload:
                        raise ValueError("empty payload")
                    return payload

                def _finish(self):
                    self.handle.cancel()
            """,
        )
    )
    assert len(found) == 1
    assert "cleanup-path callee" in found[0].message


def test_close_in_cleanup_callee_protects_open():
    assert not findings(
        (
            "src/repro/llm/x.py",
            """
            class Writer:
                def __init__(self, path):
                    self.path = path
                    self.fh = None

                def dump(self, rows):
                    self.fh = open(self.path, "w")
                    try:
                        for row in rows:
                            self.fh.write(row)
                    finally:
                        self._shutdown()

                def _shutdown(self):
                    self.fh.close()
            """,
        )
    )


def test_bare_open_with_unrelated_cleanup_callee_fires():
    found = findings(
        (
            "src/repro/llm/x.py",
            """
            class Writer:
                def __init__(self, path):
                    self.path = path
                    self.fh = None

                def dump(self, rows):
                    self.fh = open(self.path, "w")
                    try:
                        for row in rows:
                            self.fh.write(row)
                    finally:
                        self._log()

                def _log(self):
                    pass
            """,
        )
    )
    assert len(found) == 1
    assert "file descriptor" in found[0].message
