"""k-best assignment tests: CH and Murty vs brute force."""

import math
import random

import pytest

from repro.combinatorics import (
    brute_force_kbest,
    kbest_assignments_ch,
    kbest_assignments_murty,
    second_best_assignment,
    solve_assignment,
)
from repro.combinatorics.hungarian import FORBIDDEN
from repro.errors import AssignmentError


def _random_matrix(rng, n, low=0.0, high=10.0):
    return [[rng.uniform(low, high) for _ in range(n)] for _ in range(n)]


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_first_solution_is_optimal(algorithm):
    rng = random.Random(1)
    for _ in range(20):
        n = rng.randint(2, 6)
        matrix = _random_matrix(rng, n)
        best = solve_assignment(matrix)
        ranked = algorithm(matrix, 1)
        assert len(ranked) == 1
        assert ranked[0].cost == pytest.approx(best.cost)


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_costs_nondecreasing(algorithm):
    rng = random.Random(2)
    matrix = _random_matrix(rng, 5)
    ranked = algorithm(matrix, 30)
    costs = [r.cost for r in ranked]
    assert costs == sorted(costs)


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_no_duplicate_assignments(algorithm):
    rng = random.Random(3)
    matrix = _random_matrix(rng, 5)
    ranked = algorithm(matrix, 60)
    assignments = [r.assignment for r in ranked]
    assert len(set(assignments)) == len(assignments)


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_matches_bruteforce_costs(algorithm):
    rng = random.Random(4)
    for _ in range(40):
        n = rng.randint(2, 5)
        s = rng.randint(1, math.factorial(n))
        matrix = _random_matrix(rng, n)
        expected = [r.cost for r in brute_force_kbest(matrix, s)]
        actual = [r.cost for r in algorithm(matrix, s)]
        assert len(actual) == len(expected)
        for a, e in zip(actual, expected):
            assert a == pytest.approx(e, abs=1e-8)


def test_ch_and_murty_agree():
    rng = random.Random(5)
    for _ in range(25):
        n = rng.randint(2, 6)
        s = rng.randint(1, 2 * n)
        matrix = _random_matrix(rng, n)
        ch = kbest_assignments_ch(matrix, s)
        murty = kbest_assignments_murty(matrix, s)
        assert [round(r.cost, 8) for r in ch] == [round(r.cost, 8) for r in murty]


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_exhausts_small_space(algorithm):
    matrix = [[1.0, 2.0], [3.0, 4.0]]
    ranked = algorithm(matrix, 10)
    assert len(ranked) == 2  # only 2! assignments exist


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_ranks_are_sequential(algorithm):
    matrix = _random_matrix(random.Random(6), 4)
    ranked = algorithm(matrix, 10)
    assert [r.rank for r in ranked] == list(range(1, len(ranked) + 1))


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_invalid_s(algorithm):
    with pytest.raises(AssignmentError):
        algorithm([[1.0]], 0)


@pytest.mark.parametrize("algorithm", [kbest_assignments_ch, kbest_assignments_murty])
def test_respects_forbidden_edges(algorithm):
    matrix = [
        [FORBIDDEN, 1.0, 2.0],
        [1.0, FORBIDDEN, 3.0],
        [2.0, 3.0, FORBIDDEN],
    ]
    ranked = algorithm(matrix, 10)
    for solution in ranked:
        for row, col in enumerate(solution.assignment):
            assert math.isfinite(matrix[row][col])
    expected = [r.cost for r in brute_force_kbest(matrix, 10)]
    assert [round(r.cost, 8) for r in ranked] == [round(c, 8) for c in expected]


def test_second_best_differs_from_best():
    rng = random.Random(7)
    for _ in range(20):
        n = rng.randint(2, 6)
        matrix = _random_matrix(rng, n)
        best = solve_assignment(matrix)
        second = second_best_assignment(matrix)
        assert second is not None
        assignment, cost = second
        assert assignment != best.assignment
        assert cost >= best.cost - 1e-9
        expected = brute_force_kbest(matrix, 2)[1].cost
        assert cost == pytest.approx(expected, abs=1e-8)


def test_second_best_none_for_single_solution_space():
    assert second_best_assignment([[1.0]]) is None


def test_second_best_with_integer_ties():
    matrix = [[1.0, 1.0], [1.0, 1.0]]
    second = second_best_assignment(matrix)
    assert second is not None
    assert second[1] == pytest.approx(2.0)


def test_kbest_on_integer_matrix_with_ties():
    matrix = [
        [2.0, 2.0, 3.0],
        [1.0, 2.0, 1.0],
        [3.0, 1.0, 2.0],
    ]
    expected = [r.cost for r in brute_force_kbest(matrix, 6)]
    for algorithm in (kbest_assignments_ch, kbest_assignments_murty):
        actual = [r.cost for r in algorithm(matrix, 6)]
        assert actual == pytest.approx(expected)
