"""Combination counterfactual search tests."""

import pytest

from repro.core import (
    ContextEvaluator,
    SearchDirection,
    search_combination_counterfactual,
)
from repro.errors import SearchBudgetError


def _search(evaluator, scores, **kwargs):
    return search_combination_counterfactual(evaluator, scores, **kwargs)


def test_top_down_finds_minimal_flip(big_three_engine, big_three, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, direction=SearchDirection.TOP_DOWN)
    assert result.found
    cf = result.counterfactual
    assert cf.changed_sources == ("bigthree-1-match-wins",)
    assert cf.baseline_answer == "Roger Federer"
    assert cf.new_answer == "Novak Djokovic"
    assert cf.size == 1


def test_top_down_minimality_is_exhaustive(big_three_engine, big_three_context):
    """With an unbounded budget, no smaller flipping subset can exist."""
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, keep_trail=True)
    found_size = result.counterfactual.size
    smaller_tried = [c for c, _ in result.trail if len(c) < found_size]
    baseline = result.baseline_answer
    # every strictly smaller subset was evaluated and none flipped
    from itertools import combinations

    assert {tuple(c) for c, _ in result.trail} >= {
        c
        for size in range(1, found_size)
        for c in combinations(big_three_context.doc_ids(), size)
    }
    for combo, answer in result.trail:
        if len(combo) < found_size:
            assert answer == baseline


def test_bottom_up_defaults_to_original_target(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, direction=SearchDirection.BOTTOM_UP)
    assert result.found
    cf = result.counterfactual
    assert cf.baseline_answer == "Novak Djokovic"  # empty-context (KB) answer
    assert cf.new_answer == "Roger Federer"        # the full-context target
    assert cf.changed_sources == ("bigthree-1-match-wins",)


def test_bottom_up_citation_use_case_3(potya_engine, player_of_the_year):
    context = potya_engine.retrieve(player_of_the_year.query)
    evaluator = ContextEvaluator(potya_engine.llm, context)
    scores = potya_engine.relevance_scores(context)
    result = _search(
        evaluator, scores, direction="bottom_up", max_evaluations=2000
    )
    assert result.found
    cited = sorted(result.counterfactual.changed_sources)
    assert cited == [
        "potya-2011", "potya-2012", "potya-2014", "potya-2015", "potya-2018"
    ]
    assert result.counterfactual.new_answer == "5"


def test_target_answer_respected(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, target_answer="Rafael Nadal")
    assert result.found
    assert result.counterfactual.new_answer == "Rafael Nadal"


def test_target_answer_normalized(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, target_answer="  rafael NADAL. ")
    assert result.found
    assert result.counterfactual.new_answer == "Rafael Nadal"


def test_unreachable_target(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, target_answer="Serena Williams")
    assert not result.found
    assert not result.budget_exhausted  # space exhausted, not budget


def test_budget_exhaustion(potya_engine, player_of_the_year):
    context = potya_engine.retrieve(player_of_the_year.query)
    evaluator = ContextEvaluator(potya_engine.llm, context)
    scores = potya_engine.relevance_scores(context)
    result = _search(
        evaluator, scores, direction="bottom_up", max_evaluations=3
    )
    assert not result.found
    assert result.budget_exhausted
    assert result.num_evaluations == 3


def test_invalid_budget(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    with pytest.raises(SearchBudgetError):
        _search(evaluator, {}, max_evaluations=0)


def test_relevance_ordering_prioritizes_high_scores(big_three_engine, big_three_context):
    """The first size-1 candidate must be the highest-relevance source."""
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, keep_trail=True)
    first_candidate = result.trail[0][0]
    best = max(scores, key=scores.get)
    assert first_candidate == (best,)


def test_string_direction_accepted(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    assert _search(evaluator, scores, direction="top_down").found
