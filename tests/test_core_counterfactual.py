"""Combination counterfactual search tests."""

import pytest

from repro.core import (
    ContextEvaluator,
    SearchDirection,
    search_combination_counterfactual,
)
from repro.errors import SearchBudgetError


def _search(evaluator, scores, **kwargs):
    return search_combination_counterfactual(evaluator, scores, **kwargs)


def test_top_down_finds_minimal_flip(big_three_engine, big_three, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, direction=SearchDirection.TOP_DOWN)
    assert result.found
    cf = result.counterfactual
    assert cf.changed_sources == ("bigthree-1-match-wins",)
    assert cf.baseline_answer == "Roger Federer"
    assert cf.new_answer == "Novak Djokovic"
    assert cf.size == 1


def test_top_down_minimality_is_exhaustive(big_three_engine, big_three_context):
    """With an unbounded budget, no smaller flipping subset can exist."""
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, keep_trail=True)
    found_size = result.counterfactual.size
    smaller_tried = [c for c, _ in result.trail if len(c) < found_size]
    baseline = result.baseline_answer
    # every strictly smaller subset was evaluated and none flipped
    from itertools import combinations

    assert {tuple(c) for c, _ in result.trail} >= {
        c
        for size in range(1, found_size)
        for c in combinations(big_three_context.doc_ids(), size)
    }
    for combo, answer in result.trail:
        if len(combo) < found_size:
            assert answer == baseline


def test_bottom_up_defaults_to_original_target(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, direction=SearchDirection.BOTTOM_UP)
    assert result.found
    cf = result.counterfactual
    assert cf.baseline_answer == "Novak Djokovic"  # empty-context (KB) answer
    assert cf.new_answer == "Roger Federer"        # the full-context target
    assert cf.changed_sources == ("bigthree-1-match-wins",)


def test_bottom_up_citation_use_case_3(potya_engine, player_of_the_year):
    context = potya_engine.retrieve(player_of_the_year.query)
    evaluator = ContextEvaluator(potya_engine.llm, context)
    scores = potya_engine.relevance_scores(context)
    result = _search(
        evaluator, scores, direction="bottom_up", max_evaluations=2000
    )
    assert result.found
    cited = sorted(result.counterfactual.changed_sources)
    assert cited == [
        "potya-2011", "potya-2012", "potya-2014", "potya-2015", "potya-2018"
    ]
    assert result.counterfactual.new_answer == "5"


def test_target_answer_respected(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, target_answer="Rafael Nadal")
    assert result.found
    assert result.counterfactual.new_answer == "Rafael Nadal"


def test_target_answer_normalized(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, target_answer="  rafael NADAL. ")
    assert result.found
    assert result.counterfactual.new_answer == "Rafael Nadal"


def test_unreachable_target(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, target_answer="Serena Williams")
    assert not result.found
    assert not result.budget_exhausted  # space exhausted, not budget


def test_budget_exhaustion(potya_engine, player_of_the_year):
    context = potya_engine.retrieve(player_of_the_year.query)
    evaluator = ContextEvaluator(potya_engine.llm, context)
    scores = potya_engine.relevance_scores(context)
    result = _search(
        evaluator, scores, direction="bottom_up", max_evaluations=3
    )
    assert not result.found
    assert result.budget_exhausted
    assert result.num_evaluations == 3


def test_invalid_budget(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    with pytest.raises(SearchBudgetError):
        _search(evaluator, {}, max_evaluations=0)


def test_relevance_ordering_prioritizes_high_scores(big_three_engine, big_three_context):
    """The first size-1 candidate must be the highest-relevance source."""
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    result = _search(evaluator, scores, keep_trail=True)
    first_candidate = result.trail[0][0]
    best = max(scores, key=scores.get)
    assert first_candidate == (best,)


def test_string_direction_accepted(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    scores = big_three_engine.relevance_scores(big_three_context)
    assert _search(evaluator, scores, direction="top_down").found


def _scripted_world(k=4, answer_fn=None):
    from repro.core.context import Context
    from repro.llm import ScriptedLLM
    from repro.retrieval import Document

    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q?", docs)
    llm = ScriptedLLM(answer_fn=answer_fn or (lambda q, texts: "stable"))
    return context, llm


def test_budget_counts_real_llm_calls_not_memo_hits():
    """Regression: memoized re-evaluations were charged against the
    budget, so a warm shared evaluator could exhaust max_evaluations
    without a single real LLM call."""
    # flips only when exactly d3 is removed (kept = d0,d1,d2)
    def answers(q, texts):
        return "flipped" if texts == ("text 0", "text 1", "text 2") else "base"

    context, llm = _scripted_world(answer_fn=answers)
    evaluator = ContextEvaluator(llm, context)
    scores = {f"d{i}": float(4 - i) for i in range(4)}  # d3 tried last
    # warm the memo with every size-1 removal (an insight pass would)
    for i in range(4):
        evaluator.evaluate(tuple(f"d{j}" for j in range(4) if j != i))
    evaluator.original()
    calls = evaluator.llm_calls
    result = _search(evaluator, scores, max_evaluations=1)
    assert result.found  # pre-fix: budget exhausted before reaching d3
    assert not result.budget_exhausted
    assert result.counterfactual.changed_sources == ("d3",)
    assert result.num_evaluations == 0  # everything came from the memo
    assert evaluator.llm_calls == calls


def test_budget_still_bounds_fresh_evaluations():
    context, llm = _scripted_world()
    evaluator = ContextEvaluator(llm, context)
    result = _search(evaluator, {}, max_evaluations=5)
    assert result.budget_exhausted
    assert result.num_evaluations == 5


def test_bottom_up_renders_retained_sets_in_context_order():
    """Retained-set prompts must preserve the context order even when
    the relevance ranking (which orders the *candidates*) is the exact
    reverse — otherwise combination and permutation effects conflate."""
    seen = []

    def answers(q, texts):
        seen.append(texts)
        return "base"

    context, llm = _scripted_world(answer_fn=answers)
    evaluator = ContextEvaluator(llm, context)
    reversed_scores = {f"d{i}": float(i) for i in range(4)}  # d3 most relevant
    _search(evaluator, reversed_scores, direction=SearchDirection.BOTTOM_UP)
    texts_in_context_order = [f"text {i}" for i in range(4)]
    for texts in seen:
        positions = [texts_in_context_order.index(t) for t in texts]
        assert positions == sorted(positions)


def test_bottom_up_context_order_with_explicitly_unordered_candidates():
    """Even a relevance-ordered candidate tuple renders in context order."""
    from repro.core.context import CombinationPerturbation

    context, llm = _scripted_world()
    # the defensive normalization in the search itself
    subset = ("d2", "d0")
    ordered = tuple(sorted(subset, key=context.position_of))
    perturbation = CombinationPerturbation(kept=ordered)
    assert perturbation.apply(context) == ("d0", "d2")


def test_batched_search_matches_serial_result():
    def answers(q, texts):
        return "flipped" if len(texts) == 2 else "base"

    context, llm = _scripted_world(answer_fn=answers)
    scores = {f"d{i}": float(i) for i in range(4)}
    serial = _search(
        ContextEvaluator(llm, context), scores, direction="top_down", batch_size=1
    )
    batched = _search(
        ContextEvaluator(llm, context), scores, direction="top_down", batch_size=8
    )
    assert serial.found and batched.found
    assert (
        serial.counterfactual.changed_sources
        == batched.counterfactual.changed_sources
    )
    assert serial.counterfactual.new_answer == batched.counterfactual.new_answer


def test_invalid_batch_size(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    with pytest.raises(SearchBudgetError):
        _search(evaluator, {}, batch_size=0)
