"""TransformersLLM adapter tests via a lightweight fake backend.

No network, no weights: the fake reproduces the slice of the
transformers generate() interface the adapter consumes, pinning the
exact calls a real checkpoint would receive.
"""

import pytest

from repro.core import Context, ContextEvaluator, search_combination_counterfactual
from repro.errors import GenerationError
from repro.llm import PromptBuilder
from repro.llm.transformers_adapter import TransformersLLM
from repro.retrieval import Document

BUILDER = PromptBuilder()


class _FakeTensor:
    """Just enough of a tensor: shape and slicing over a list."""

    def __init__(self, values):
        self.values = list(values)

    @property
    def shape(self):
        return (1, len(self.values))

    def __getitem__(self, item):
        if isinstance(item, tuple):  # sequences[0][n:]
            raise TypeError
        result = self.values[item]
        return _FakeTensor(result) if isinstance(result, list) else result

    def __len__(self):
        return len(self.values)


class _FakeEncoding(dict):
    def to(self, device):
        return self


class _FakeLayerAttention:
    """Indexable as [0, head, -1, token] with deterministic values."""

    def __init__(self, num_heads, num_tokens):
        self.shape = (1, num_heads, num_tokens, num_tokens)

    def __getitem__(self, key):
        _, head, _, token = key
        return 0.01 * (head + 1) + 0.001 * token


class _FakeOutput:
    def __init__(self, sequences, attentions):
        self.sequences = sequences
        self.attentions = attentions


class _FakeTokenizer:
    """Whitespace tokenizer with char offsets and a simple vocab."""

    def __call__(self, text, return_tensors=None, return_offsets_mapping=False):
        tokens = []
        offsets = []
        cursor = 0
        for word in text.split():
            start = text.find(word, cursor)
            offsets.append((start, start + len(word)))
            tokens.append(hash(word) % 1000)
            cursor = start + len(word)
        encoding = _FakeEncoding({"input_ids": _FakeTensor(tokens)})
        if return_offsets_mapping:
            encoding["offset_mapping"] = offsets
        return encoding

    def decode(self, ids, skip_special_tokens=True):
        return self._answer

    _answer = "Fake Answer"


class _FakeModel:
    def __init__(self, tokenizer, answer_fn=None):
        self._tokenizer = tokenizer
        self._answer_fn = answer_fn
        self.generate_kwargs = None

    def generate(self, input_ids=None, offset_mapping=None, **kwargs):
        self.generate_kwargs = kwargs
        prompt_tokens = input_ids.values
        answer_ids = [1, 2]
        num_layers, num_heads = 2, 3
        attentions = (
            tuple(
                _FakeLayerAttention(num_heads, len(prompt_tokens))
                for _ in range(num_layers)
            ),
        )
        return _FakeOutput(
            sequences=[_FakeTensor(prompt_tokens + answer_ids)],
            attentions=attentions,
        )


def _adapter(answer="Fake Answer"):
    tokenizer = _FakeTokenizer()
    tokenizer._answer = answer
    model = _FakeModel(tokenizer)
    return TransformersLLM(
        model_name="fake/model",
        loader=lambda name, device: (tokenizer, model),
    ), model


def test_missing_transformers_raises_generation_error():
    with pytest.raises(GenerationError):
        TransformersLLM(model_name="meta-llama/Llama-2-7b-chat-hf")


def test_name():
    adapter, _ = _adapter()
    assert adapter.name == "transformers/fake/model"


def test_generate_decodes_answer():
    adapter, model = _adapter(answer="Roger Federer")
    prompt = BUILDER.build("Who is the best?", ["Some source text."])
    result = adapter.generate(prompt)
    assert result.answer == "Roger Federer"
    assert result.usage.prompt_tokens == len(prompt.split())
    assert result.usage.completion_tokens == 2


def test_generation_is_greedy_and_attention_enabled():
    adapter, model = _adapter()
    adapter.generate(BUILDER.build("q?", ["text"]))
    assert model.generate_kwargs["do_sample"] is False
    assert model.generate_kwargs["output_attentions"] is True
    assert model.generate_kwargs["return_dict_in_generate"] is True


def test_attention_trace_maps_tokens_to_sources():
    adapter, _ = _adapter()
    prompt = BUILDER.build("q?", ["alpha beta", "gamma delta epsilon"])
    result = adapter.generate(prompt)
    trace = result.attention
    assert trace is not None
    by_source = {}
    for entry in trace.tokens:
        by_source.setdefault(entry.source_index, []).append(entry.token)
    assert by_source[0] == ["alpha", "beta"]
    assert by_source[1] == ["gamma", "delta", "epsilon"]
    assert trace.num_layers == 2 and trace.num_heads == 3


def test_adapter_drives_explanations():
    """The adapter satisfies the LanguageModel protocol end to end."""
    tokenizer = _FakeTokenizer()

    class FlippingModel(_FakeModel):
        def generate(self, input_ids=None, **kwargs):
            output = super().generate(input_ids=input_ids, **kwargs)
            # answer depends on prompt length: removing a source flips it
            # (full context is ~70 whitespace tokens; one source is 14)
            tokenizer._answer = "long" if len(input_ids.values) > 60 else "short"
            return output

    adapter = TransformersLLM(
        model_name="fake/flip",
        loader=lambda name, device: (tokenizer, FlippingModel(tokenizer)),
    )
    docs = [
        Document(doc_id=f"d{i}", text="word " * 12) for i in range(3)
    ]
    context = Context.from_documents("what is it?", docs)
    evaluator = ContextEvaluator(adapter, context)
    scores = {doc.doc_id: 1.0 for doc in docs}
    result = search_combination_counterfactual(evaluator, scores)
    assert result.found
    assert result.counterfactual.new_answer == "short"


def test_invalid_prompt_rejected():
    adapter, _ = _adapter()
    with pytest.raises(Exception):
        adapter.generate("not a RAGE prompt at all")


# -- batched inference ----------------------------------------------------


class _Fake2DTensor:
    """Batch of token rows: shape only (the adapter reads nothing else)."""

    def __init__(self, rows):
        self.rows = rows

    @property
    def shape(self):
        return (len(self.rows), len(self.rows[0]) if self.rows else 0)


class _FakeBatchTokenizer:
    """Whitespace tokenizer that supports left-padded batch encoding."""

    pad_token = None
    eos_token = "</s>"
    padding_side = "right"

    def __call__(self, text, return_tensors=None, padding=False,
                 return_offsets_mapping=False):
        if isinstance(text, list):
            assert padding, "batch encoding requires padding"
            assert self.padding_side == "left"
            token_rows = [[hash(w) % 1000 for w in t.split()] for t in text]
            width = max(len(row) for row in token_rows)
            padded = [[0] * (width - len(row)) + row for row in token_rows]
            mask = [[0] * (width - len(row)) + [1] * len(row) for row in token_rows]
            return _FakeEncoding(
                {"input_ids": _Fake2DTensor(padded), "attention_mask": mask}
            )
        tokens = [hash(w) % 1000 for w in text.split()]
        return _FakeEncoding({"input_ids": _FakeTensor(tokens)})

    def decode(self, ids, skip_special_tokens=True):
        return f"answer-{ids[0] - 100}"


class _FakeBatchModel:
    def __init__(self):
        self.batch_calls = 0
        self.batch_kwargs = None

    def generate(self, input_ids=None, attention_mask=None, **kwargs):
        self.batch_calls += 1
        self.batch_kwargs = kwargs
        return _FakeOutput(
            sequences=[
                list(row) + [100 + index]
                for index, row in enumerate(input_ids.rows)
            ],
            attentions=None,
        )


def test_generate_batch_true_batched_inference():
    tokenizer = _FakeBatchTokenizer()
    model = _FakeBatchModel()
    adapter = TransformersLLM(
        model_name="fake/batch", loader=lambda name, device: (tokenizer, model)
    )
    prompts = [
        BUILDER.build("q?", ["alpha"]),
        BUILDER.build("q?", ["beta gamma delta epsilon"]),
        BUILDER.build("q?", ["zeta eta"]),
    ]
    results = adapter.generate_batch(prompts)
    assert model.batch_calls == 1  # one padded call for the whole batch
    assert [r.answer for r in results] == ["answer-0", "answer-1", "answer-2"]
    assert [r.prompt for r in results] == prompts
    # batch mode omits attention per the contract, but keeps usage honest
    assert all(r.attention is None for r in results)
    assert [r.usage.prompt_tokens for r in results] == [
        len(p.split()) for p in prompts
    ]
    assert all(r.diagnostics.get("batched") for r in results)
    assert model.batch_kwargs["do_sample"] is False
    # the pad token was filled from eos and padding_side restored
    assert tokenizer.pad_token == "</s>"
    assert tokenizer.padding_side == "right"


def test_generate_batch_chunks_oversized_batches():
    """A plan-sized batch must split into bounded model.generate calls
    instead of one giant padded tensor."""
    tokenizer = _FakeBatchTokenizer()
    model = _FakeBatchModel()
    adapter = TransformersLLM(
        model_name="fake/batch",
        max_batch_rows=4,
        loader=lambda name, device: (tokenizer, model),
    )
    prompts = [BUILDER.build("q?", [f"text {i}"]) for i in range(10)]
    results = adapter.generate_batch(prompts)
    assert model.batch_calls == 3  # 4 + 4 + 2
    assert [r.prompt for r in results] == prompts


def test_invalid_max_batch_rows():
    with pytest.raises(GenerationError):
        TransformersLLM(
            model_name="fake/batch",
            max_batch_rows=0,
            loader=lambda name, device: (_FakeBatchTokenizer(), _FakeBatchModel()),
        )


def test_generate_batch_empty():
    tokenizer = _FakeBatchTokenizer()
    adapter = TransformersLLM(
        model_name="fake/batch",
        loader=lambda name, device: (tokenizer, _FakeBatchModel()),
    )
    assert adapter.generate_batch([]) == []


def test_generate_batch_falls_back_when_tokenizer_cannot_pad():
    """Backends with no padding support keep the alignment contract via
    sequential generation."""
    adapter, _ = _adapter(answer="Sequential Answer")
    prompts = [BUILDER.build("q?", ["one"]), BUILDER.build("q?", ["two"])]
    results = adapter.generate_batch(prompts)
    assert len(results) == 2
    assert [r.prompt for r in results] == prompts
    assert all(r.answer == "Sequential Answer" for r in results)
