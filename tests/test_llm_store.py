"""Persistent prompt-store tests: round-trips, corruption, eviction,
concurrency, and the persisted lifetime counters."""

import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attention.model import AttentionTrace, TokenAttention
from repro.errors import ConfigError
from repro.llm import GenerationResult, PromptStore, SimulatedLLM, TokenUsage, store_key
from repro.llm.store import decode_result, encode_result


def _result(answer="Roger Federer", prompt="Question: q\n1. s\nAnswer:") -> GenerationResult:
    return GenerationResult(
        answer=answer,
        prompt=prompt,
        usage=TokenUsage(prompt_tokens=7, completion_tokens=2),
        diagnostics={"intent": "superlative", "votes": {"Roger Federer": 1.5}},
    )


# -- keys -----------------------------------------------------------------


def test_store_key_is_content_addressed():
    key = store_key("model-a", "prompt")
    assert key == store_key("model-a", "prompt")
    assert key != store_key("model-b", "prompt")
    assert key != store_key("model-a", "prompt!")
    assert len(key) == 64 and all(c in "0123456789abcdef" for c in key)


def test_store_key_params_are_order_insensitive():
    assert store_key("m", "p", {"a": 1, "b": 2}) == store_key("m", "p", {"b": 2, "a": 1})
    assert store_key("m", "p", {"a": 1}) != store_key("m", "p", {"a": 2})
    assert store_key("m", "p", {}) == store_key("m", "p", None)


# -- round trips ----------------------------------------------------------


def test_round_trip_preserves_result(tmp_path):
    store = PromptStore(tmp_path)
    original = _result()
    store.put("model", original.prompt, original)
    loaded = store.get("model", original.prompt)
    assert loaded is not None
    assert loaded.answer == original.answer
    assert loaded.prompt == original.prompt
    assert loaded.usage == original.usage
    assert loaded.diagnostics == original.diagnostics
    assert loaded.attention is None
    assert store.stats.hits == 1 and store.stats.writes == 1


def test_round_trip_preserves_attention_trace(tmp_path):
    trace = AttentionTrace(num_layers=2, num_heads=2)
    trace.tokens.append(
        TokenAttention(token="federer", source_index=1, values=((0.5, 0.25), (0.125, 1.0)))
    )
    result = _result()
    result.attention = trace
    store = PromptStore(tmp_path)
    store.put("model", result.prompt, result)
    loaded = store.get("model", result.prompt)
    assert loaded.attention is not None
    assert loaded.attention.num_layers == 2
    assert loaded.attention.tokens == trace.tokens
    assert loaded.attention.source_totals == trace.source_totals


def test_round_trip_simulated_generation_is_faithful(tmp_path):
    llm = SimulatedLLM()
    prompt = (
        "Answer the question using only the numbered sources.\n\n"
        "Sources:\n1. Roger Federer is widely considered the best player.\n\n"
        "Question: Who is the best tennis player?\n\nAnswer:"
    )
    real = llm.generate(prompt)
    store = PromptStore(tmp_path)
    store.put(llm.name, prompt, real)
    loaded = store.get(llm.name, prompt)
    assert loaded.answer == real.answer
    assert loaded.usage == real.usage
    assert [t.token for t in loaded.attention.tokens] == [
        t.token for t in real.attention.tokens
    ]


@settings(max_examples=25, deadline=None)
@given(
    answer=st.text(min_size=0, max_size=80),
    prompt=st.text(min_size=1, max_size=200),
    model=st.text(min_size=1, max_size=30),
    prompt_tokens=st.integers(min_value=0, max_value=10**6),
    completion_tokens=st.integers(min_value=0, max_value=10**6),
)
def test_round_trip_property(tmp_path_factory, answer, prompt, model,
                             prompt_tokens, completion_tokens):
    store = PromptStore(tmp_path_factory.mktemp("store"))
    original = GenerationResult(
        answer=answer,
        prompt=prompt,
        usage=TokenUsage(prompt_tokens, completion_tokens),
        diagnostics={"echo": answer},
    )
    store.put(model, prompt, original)
    loaded = store.get(model, prompt)
    assert loaded is not None
    assert loaded.answer == original.answer
    assert loaded.prompt == original.prompt
    assert loaded.usage == original.usage
    assert loaded.diagnostics == {"echo": answer}


def test_encode_decode_rejects_schema_mismatch():
    payload = encode_result(_result())
    payload["version"] = 99
    with pytest.raises(ValueError):
        decode_result(payload)


# -- misses and corruption ------------------------------------------------


def test_absent_entry_is_a_miss(tmp_path):
    store = PromptStore(tmp_path)
    assert store.get("model", "never written") is None
    assert store.stats.misses == 1
    assert store.stats.hit_rate == 0.0


def test_truncated_entry_falls_back_to_miss_and_heals(tmp_path):
    store = PromptStore(tmp_path)
    result = _result()
    store.put("model", result.prompt, result)
    path = store.path_for("model", result.prompt)
    path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
    assert store.get("model", result.prompt) is None
    assert store.stats.corrupt == 1
    assert not path.exists()  # dropped so a rewrite heals the store
    store.put("model", result.prompt, result)
    assert store.get("model", result.prompt).answer == result.answer


@pytest.mark.parametrize(
    "garbage",
    [b"", b"not json at all", b"\xff\xfe\x00", b'{"version": 1}', b'[1, 2, 3]',
     b'{"version": 1, "answer": "a", "prompt": "p", "usage": {}}'],
)
def test_garbled_entries_never_raise(tmp_path, garbage):
    store = PromptStore(tmp_path)
    path = store.path_for("model", "p")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(garbage)
    assert store.get("model", "p") is None
    assert store.stats.corrupt == 1


# -- layout and inventory -------------------------------------------------


def test_sharded_layout_and_inventory(tmp_path):
    store = PromptStore(tmp_path)
    for index in range(20):
        result = _result(prompt=f"prompt {index}")
        store.put("model", result.prompt, result)
    assert store.entry_count == 20
    assert store.total_bytes > 0
    for path in store.entries():
        key = path.stem
        assert path.parent.name == key[:2]
        assert path.parent.parent == store.root
    assert not list(store.root.glob("**/.tmp-*"))  # atomic writes leave no temp files


def test_clear_removes_everything(tmp_path):
    store = PromptStore(tmp_path)
    for index in range(5):
        store.put("model", f"p{index}", _result(prompt=f"p{index}"))
    assert store.clear() == 5
    assert store.entry_count == 0
    assert store.get("model", "p0") is None


def test_put_is_idempotent(tmp_path):
    store = PromptStore(tmp_path)
    result = _result()
    store.put("model", result.prompt, result)
    store.put("model", result.prompt, result)
    assert store.entry_count == 1


# -- eviction -------------------------------------------------------------


def test_eviction_respects_size_cap(tmp_path):
    store = PromptStore(tmp_path, max_bytes=2000)
    for index in range(30):
        store.put("model", f"prompt {index}", _result(prompt=f"prompt {index}"))
    assert store.total_bytes <= 2000
    assert store.entry_count < 30
    assert store.stats.evictions > 0


def test_eviction_is_least_recently_used(tmp_path):
    store = PromptStore(tmp_path, max_bytes=10**9)  # no eviction while seeding
    for index in range(6):
        store.put("model", f"p{index}", _result(prompt=f"p{index}"))
        # Strictly increasing mtimes without sleeping.
        path = store.path_for("model", f"p{index}")
        os.utime(path, (index, index))
    # Touch p0 so it becomes the most recently used entry.
    newest = 100
    os.utime(store.path_for("model", "p0"), (newest, newest))
    entry_size = store.total_bytes // 6
    store.max_bytes = int(entry_size * 2.5)  # room for ~2 entries
    store.put("model", "p-new", _result(prompt="p-new"))
    os.utime(store.path_for("model", "p-new"), (newest + 1, newest + 1))
    store._evict_to_cap()
    survivors = {path.stem for path in store.entries()}
    assert store.path_for("model", "p0").stem in survivors  # recently used
    assert store.path_for("model", "p1").stem not in survivors  # oldest went first


def test_invalid_max_bytes_rejected(tmp_path):
    with pytest.raises(ConfigError):
        PromptStore(tmp_path, max_bytes=0)


# -- concurrency ----------------------------------------------------------


def test_concurrent_writers_and_readers_are_safe(tmp_path):
    store = PromptStore(tmp_path)
    prompts = [f"prompt {index}" for index in range(8)]
    errors = []
    barrier = threading.Barrier(8)

    def hammer(worker):
        try:
            barrier.wait(timeout=10)
            for _ in range(25):
                for prompt in prompts:
                    store.put("model", prompt, _result(prompt=prompt))
                    loaded = store.get("model", prompt)
                    # A concurrent clear()-free store never loses a
                    # written entry, and never serves a torn one.
                    assert loaded is not None and loaded.prompt == prompt
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(hammer, range(8)))
    assert not errors
    assert store.entry_count == len(prompts)
    assert store.stats.corrupt == 0


# -- lifetime counters ----------------------------------------------------


def test_persist_stats_accumulates_across_sessions(tmp_path):
    first = PromptStore(tmp_path)
    first.put("model", "p", _result(prompt="p"))
    first.get("model", "p")
    first.get("model", "missing")
    meta = first.persist_stats()
    assert meta["hits"] == 1 and meta["misses"] == 1 and meta["writes"] == 1

    second = PromptStore(tmp_path)
    second.get("model", "p")
    meta = second.persist_stats()
    assert meta["hits"] == 2 and meta["misses"] == 1

    # Repeated persistence must not double-count.
    assert second.persist_stats()["hits"] == 2


def test_two_concurrent_writers_never_lose_updates(tmp_path):
    """Regression: two serving processes sharing one cache dir used to
    clobber each other's lifetime counters.

    The old layout read-modify-wrote one ``_meta.json``; with writer A
    persisting after writer B, B's delta vanished.  Each session now
    owns a private delta file merged on read, so interleaved persists
    in *any* order must sum exactly.
    """
    writer_a = PromptStore(tmp_path)
    writer_b = PromptStore(tmp_path)
    # The worst-case interleaving for read-modify-write: both read the
    # same baseline, then persist one after the other, repeatedly.
    for round_number in range(3):
        writer_a.put("model", f"a-{round_number}", _result(prompt=f"a-{round_number}"))
        writer_b.put("model", f"b-{round_number}", _result(prompt=f"b-{round_number}"))
        writer_a.get("model", f"a-{round_number}")
        writer_b.get("model", "never-written")
        writer_a.persist_stats()
        writer_b.persist_stats()
    merged = PromptStore(tmp_path).read_meta()
    assert merged["writes"] == 6  # 3 each — nothing clobbered
    assert merged["hits"] == 3  # all of A's
    assert merged["misses"] == 3  # all of B's


def test_meta_merges_legacy_single_file_aggregate(tmp_path):
    """Counters persisted by the old single-file layout still count."""
    (tmp_path / "_meta.json").write_text(
        json.dumps({"hits": 40, "misses": 2}), encoding="utf-8"
    )
    store = PromptStore(tmp_path)
    store.put("model", "p", _result(prompt="p"))
    store.get("model", "p")
    meta = store.persist_stats()
    assert meta["hits"] == 41 and meta["misses"] == 2 and meta["writes"] == 1


def test_clear_removes_session_meta_files(tmp_path):
    store = PromptStore(tmp_path)
    store.put("model", "p", _result(prompt="p"))
    store.persist_stats()
    assert store.read_meta()["writes"] == 1
    store.clear()
    assert store.read_meta() == {}
    assert store.entry_count == 0


def test_persist_after_clear_does_not_resurrect_counters(tmp_path):
    """Regression: clear() wipes the on-disk lifetime counters, so a
    later persist (e.g. server shutdown) must not write the pre-clear
    session totals back."""
    store = PromptStore(tmp_path)
    store.put("model", "p", _result(prompt="p"))
    store.get("model", "p")
    store.persist_stats()
    store.clear()
    assert store.persist_stats() == {}  # nothing to resurrect
    # Post-clear traffic starts a fresh count.
    store.put("model", "q", _result(prompt="q"))
    assert store.persist_stats()["writes"] == 1


def test_idle_session_persists_no_meta_file(tmp_path):
    store = PromptStore(tmp_path)
    assert store.persist_stats() == {}
    assert list(tmp_path.glob("_meta*")) == []


def test_old_session_meta_files_compact_into_aggregate(tmp_path):
    """Session files do not accumulate forever: once enough exist, the
    hour-old ones fold into _meta.json with totals preserved."""
    import json as json_mod
    import os as os_mod
    import time as time_mod

    # Simulate many finished CLI runs: one session file each, all old.
    stale = time_mod.time() - 7200
    for i in range(25):
        path = tmp_path / f"_meta-dead-{i:04d}.json"
        path.write_text(json_mod.dumps({"hits": 1, "writes": 2}), "utf-8")
        os_mod.utime(path, (stale, stale))
    store = PromptStore(tmp_path)
    store.put("model", "p", _result(prompt="p"))
    merged = store.persist_stats()  # triggers the compaction pass
    assert merged["hits"] == 25 and merged["writes"] == 51
    remaining = list(tmp_path.glob("_meta-*.json"))
    assert len(remaining) == 1  # only this session's live file
    aggregate = json_mod.loads((tmp_path / "_meta.json").read_text("utf-8"))
    assert aggregate == {"hits": 25, "writes": 50}
    # Totals survive the fold for every reader.
    assert PromptStore(tmp_path).read_meta() == merged


def test_owner_rebaselines_after_its_file_is_compacted(tmp_path):
    """An owner whose session file was folded away must persist only
    the not-yet-aggregated remainder — never its full cumulative
    counters again (that would double-count the folded part)."""
    store = PromptStore(tmp_path)
    store.put("model", "p", _result(prompt="p"))
    store.persist_stats()
    # Simulate a compactor folding this session's file into the base.
    session_file = next(tmp_path.glob("_meta-*.json"))
    (tmp_path / "_meta.json").write_text(session_file.read_text("utf-8"), "utf-8")
    session_file.unlink()
    # More traffic, then persist again: totals must not double.
    store.put("model", "q", _result(prompt="q"))
    merged = store.persist_stats()
    assert merged["writes"] == 2
    # And idempotence still holds under the new session file.
    assert store.persist_stats()["writes"] == 2


def test_read_meta_tolerates_garbage(tmp_path):
    store = PromptStore(tmp_path)
    (store.root / "_meta.json").write_text("{broken", encoding="utf-8")
    assert store.read_meta() == {}
    (store.root / "_meta.json").write_text(json.dumps([1, 2]), encoding="utf-8")
    assert store.read_meta() == {}


def test_put_is_best_effort_on_write_failure(tmp_path, monkeypatch):
    """A failing filesystem costs the entry, never the explanation."""
    store = PromptStore(tmp_path)

    def refuse(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", refuse)
    result = _result()
    store.put("model", result.prompt, result)  # must not raise
    assert store.stats.write_errors == 1
    assert store.stats.writes == 0
    monkeypatch.undo()
    assert store.get("model", result.prompt) is None  # nothing committed
    assert not list(store.root.glob("**/.tmp-*"))  # temp file cleaned up


def test_root_expands_user(tmp_path, monkeypatch):
    monkeypatch.setenv("HOME", str(tmp_path))
    store = PromptStore("~/rage-store")
    assert store.root == tmp_path / "rage-store"
    assert store.root.is_dir()


def test_usage_counts_entries_and_bytes_in_one_walk(tmp_path):
    store = PromptStore(tmp_path)
    for index in range(3):
        store.put("model", f"p{index}", _result(prompt=f"p{index}"))
    entries, nbytes = store.usage()
    assert entries == 3
    assert nbytes == sum(p.stat().st_size for p in store.entries())
