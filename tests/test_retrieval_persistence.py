"""Index save/load tests."""

import json

import pytest

from repro.errors import RetrievalError
from repro.retrieval import (
    BM25Scorer,
    InvertedIndex,
    Searcher,
    load_index,
    save_index,
)
from repro.retrieval.persistence import FORMAT_VERSION, index_from_dict, index_to_dict
from repro.textproc import Tokenizer


def test_roundtrip_preserves_structure(tiny_index, tmp_path):
    path = tmp_path / "index.json"
    save_index(tiny_index, path)
    reopened = load_index(path)
    assert len(reopened) == len(tiny_index)
    assert reopened.vocabulary() == tiny_index.vocabulary()
    for term in tiny_index.vocabulary():
        assert reopened.postings(term) == tiny_index.postings(term)
    for doc in tiny_index.documents():
        assert reopened.doc_length(doc.doc_id) == tiny_index.doc_length(doc.doc_id)
        assert reopened.document(doc.doc_id) == doc


def test_roundtrip_preserves_rankings(tiny_index, tmp_path):
    path = tmp_path / "index.json"
    save_index(tiny_index, path)
    reopened = load_index(path)
    for query in ("quick brown fox", "dogs cats", "harmony"):
        original = Searcher(tiny_index).search(query, k=4)
        restored = Searcher(reopened).search(query, k=4)
        assert original.doc_ids() == restored.doc_ids()
        assert original.scores() == pytest.approx(restored.scores())


def test_roundtrip_preserves_tokenizer_config(tmp_path):
    from repro.retrieval import Document

    index = InvertedIndex.build(
        [Document(doc_id="d", text="Winning Games")],
        tokenizer=Tokenizer(stem=False, remove_stopwords=False),
    )
    path = tmp_path / "index.json"
    save_index(index, path)
    reopened = load_index(path)
    assert reopened.tokenizer.stem is False
    assert reopened.tokenizer.remove_stopwords is False
    # query analysis matches: unstemmed term present
    assert reopened.document_frequency("winning") == 1


def test_bm25_scores_identical_after_reload(tiny_index, tmp_path):
    path = tmp_path / "index.json"
    save_index(tiny_index, path)
    reopened = load_index(path)
    scorer = BM25Scorer()
    terms = tiny_index.tokenizer.tokenize("quick fox dog")
    assert scorer.score_query(tiny_index, terms) == pytest.approx(
        scorer.score_query(reopened, terms)
    )


def test_missing_file():
    with pytest.raises(RetrievalError):
        load_index("/nonexistent/index.json")


def test_corrupt_file(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(RetrievalError):
        load_index(path)
    path.write_text("[1, 2, 3]", encoding="utf-8")
    with pytest.raises(RetrievalError):
        load_index(path)


def test_wrong_format_version(tiny_index, tmp_path):
    payload = index_to_dict(tiny_index)
    payload["format_version"] = FORMAT_VERSION + 1
    path = tmp_path / "future.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(RetrievalError):
        load_index(path)


def test_dict_roundtrip_without_files(tiny_index):
    payload = index_to_dict(tiny_index)
    rebuilt = index_from_dict(payload)
    assert rebuilt.vocabulary() == tiny_index.vocabulary()


def test_saved_file_is_json(tiny_index, tmp_path):
    path = tmp_path / "index.json"
    save_index(tiny_index, path)
    parsed = json.loads(path.read_text(encoding="utf-8"))
    assert parsed["format_version"] == FORMAT_VERSION
    assert len(parsed["documents"]) == len(tiny_index)


def test_save_is_atomic_under_crash(tiny_index, tmp_path, monkeypatch):
    """A crash mid-write never leaves a truncated, unloadable index.

    Regression test for the bare ``Path.write_text`` save: the payload
    now lands in a temp file and is ``os.replace``-d into place, so a
    failure while serializing leaves the previous complete file intact
    (and no temp litter behind).
    """
    import os

    from repro.retrieval import persistence

    path = tmp_path / "index.json"
    save_index(tiny_index, path)
    good = path.read_bytes()

    def crash(payload):
        raise OSError("disk full mid-serialization")

    monkeypatch.setattr(persistence.json, "dumps", crash)
    with pytest.raises(OSError):
        save_index(tiny_index, path)
    monkeypatch.undo()

    # The previous complete file survived, still loads, and the aborted
    # attempt cleaned up its temp file.
    assert path.read_bytes() == good
    load_index(path)
    assert [p.name for p in tmp_path.iterdir()] == ["index.json"]

    # A crash at the final rename also preserves the original.
    def crash_replace(src, dst):
        os.unlink(src)
        raise OSError("crashed at rename")

    monkeypatch.setattr(persistence.os, "replace", crash_replace)
    with pytest.raises(OSError):
        save_index(tiny_index, path)
    monkeypatch.undo()
    assert path.read_bytes() == good


def test_save_replaces_existing_file_atomically(tiny_index, tmp_path):
    path = tmp_path / "index.json"
    path.write_text("stale previous index")
    save_index(tiny_index, path)
    reopened = load_index(path)
    assert len(reopened) == len(tiny_index)
