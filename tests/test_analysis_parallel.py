"""Parallel lint: ``--jobs N`` must not change a byte of output."""

from __future__ import annotations

import json

import pytest

from repro.analysis import analyze_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import MIN_FILES_FOR_POOL

#: One module per template instantiation; half are dirty so ordering
#: bugs in the merge would actually show.
CLEAN_TEMPLATE = """\
def fine_{n}(value):
    return value + {n}
"""

DIRTY_TEMPLATE = """\
def check_{n}(value):
    if value < 0:
        raise ValueError("bad value {n}")
    return value
"""


@pytest.fixture()
def wide_tree(tmp_path):
    """A package wide enough to cross the process-pool threshold."""
    package = tmp_path / "src" / "repro" / "wide"
    package.mkdir(parents=True)
    count = MIN_FILES_FOR_POOL + 4
    for n in range(count):
        template = DIRTY_TEMPLATE if n % 2 else CLEAN_TEMPLATE
        (package / f"mod_{n:02d}.py").write_text(
            template.format(n=n), encoding="utf-8"
        )
    return tmp_path, count


def test_wide_tree_crosses_pool_threshold(wide_tree):
    _, count = wide_tree
    assert count >= MIN_FILES_FOR_POOL


def test_jobs_json_output_is_byte_identical(wide_tree, capsys):
    root, _ = wide_tree
    outputs = {}
    for jobs in ("1", "4"):
        code = lint_main(
            ["--root", str(root), "src", "--json", "--jobs", jobs]
        )
        assert code == 1
        outputs[jobs] = capsys.readouterr().out
    assert outputs["1"] == outputs["4"]
    payload = json.loads(outputs["1"])
    # Every dirty module reported, in deterministic path order.
    paths = [finding["path"] for finding in payload["findings"]]
    assert paths == sorted(paths)
    assert payload["counts"]["reported"] == 6


def test_analyze_paths_jobs_parameter_matches_serial(wide_tree):
    root, count = wide_tree
    serial = analyze_paths(["src"], root=root, jobs=1)
    pooled = analyze_paths(["src"], root=root, jobs=4)
    assert pooled.files == count
    assert pooled.files == serial.files
    assert pooled.findings == serial.findings
    assert pooled.suppressed == serial.suppressed


def test_small_tree_stays_in_process(tmp_path):
    # Below the threshold the pool is skipped entirely; results are
    # identical either way.
    package = tmp_path / "src" / "repro" / "tiny"
    package.mkdir(parents=True)
    (package / "one.py").write_text(DIRTY_TEMPLATE.format(n=1), encoding="utf-8")
    serial = analyze_paths(["src"], root=tmp_path, jobs=1)
    pooled = analyze_paths(["src"], root=tmp_path, jobs=8)
    assert pooled.findings == serial.findings
    assert len(pooled.findings) == 1


def test_project_rules_survive_the_pool(tmp_path, capsys):
    # Whole-program findings (lock-order spans two methods) come out of
    # the project phase, which runs in the parent — the pool must hand
    # back summaries good enough to reconstruct them, alongside enough
    # filler files to actually engage the pool.
    package = tmp_path / "src" / "repro" / "wide"
    package.mkdir(parents=True)
    for n in range(MIN_FILES_FOR_POOL):
        (package / f"mod_{n:02d}.py").write_text(
            CLEAN_TEMPLATE.format(n=n), encoding="utf-8"
        )
    (package / "store.py").write_text(
        "import threading\n"
        "\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._b = threading.Lock()\n"
        "\n"
        "    def put(self):\n"
        "        with self._a:\n"
        "            with self._b:\n"
        "                pass\n"
        "\n"
        "    def clear(self):\n"
        "        with self._b:\n"
        "            with self._a:\n"
        "                pass\n",
        encoding="utf-8",
    )
    code = lint_main(
        ["--root", str(tmp_path), "src", "--rule", "lock-order", "--jobs", "4"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert out.count("[lock-order]") == 2
