"""Scripted LLM tests — canned answers drive the explanation stack."""

import pytest

from repro.core import (
    Context,
    ContextEvaluator,
    analyze_combinations,
    search_combination_counterfactual,
    search_permutation_counterfactual,
    select_combinations,
)
from repro.llm import PromptBuilder, ScriptedLLM
from repro.retrieval import Document

BUILDER = PromptBuilder()


def _context(k=3):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    return Context.from_documents("what is the answer?", docs)


def test_scripted_lookup():
    llm = ScriptedLLM({("a",): "one", ("a", "b"): "two"}, default="none")
    assert llm.generate(BUILDER.build("q?", ["a"])).answer == "one"
    assert llm.generate(BUILDER.build("q?", ["a", "b"])).answer == "two"
    assert llm.generate(BUILDER.build("q?", ["b", "a"])).answer == "none"  # order matters
    assert llm.generate(BUILDER.build("q?", [])).answer == "none"
    assert llm.calls == 4


def test_scripted_empty_context_key():
    llm = ScriptedLLM({(): "parametric"}, default="x")
    assert llm.generate(BUILDER.build("q?", [])).answer == "parametric"


def test_answer_fn_takes_precedence():
    llm = ScriptedLLM(
        {("text 0",): "scripted"},
        answer_fn=lambda question, texts: "fn" if len(texts) == 1 else None,
    )
    assert llm.generate(BUILDER.build("q?", ["text 0"])).answer == "fn"
    assert llm.generate(BUILDER.build("q?", ["text 0", "text 1"])).answer == "unscripted"


def test_record():
    llm = ScriptedLLM()
    llm.record(["alpha"], "recorded")
    assert llm.generate(BUILDER.build("q?", ["alpha"])).answer == "recorded"


def test_scripted_llm_drives_counterfactual_search():
    """An exactly-specified answer function: the answer flips only when
    both d0 and d2 are absent — the minimal top-down removal must be
    {d0, d2}, size 2."""
    context = _context(3)

    def answers(question, texts):
        present = set(texts)
        if "text 0" not in present and "text 2" not in present:
            return "flipped"
        return "base"

    llm = ScriptedLLM(answer_fn=answers)
    evaluator = ContextEvaluator(llm, context)
    scores = {doc_id: 1.0 for doc_id in context.doc_ids()}
    result = search_combination_counterfactual(evaluator, scores)
    assert result.found
    assert sorted(result.counterfactual.changed_sources) == ["d0", "d2"]
    assert result.counterfactual.size == 2


def test_scripted_llm_drives_permutation_search():
    """Flip only when d2 is first: the max-tau flip rotates d2 forward."""
    context = _context(3)

    def answers(question, texts):
        return "flipped" if texts and texts[0] == "text 2" else "base"

    llm = ScriptedLLM(answer_fn=answers)
    evaluator = ContextEvaluator(llm, context)
    result = search_permutation_counterfactual(evaluator)
    assert result.found
    assert result.counterfactual.perturbation.order[0] == "d2"
    # best achievable tau for moving the last element first at k=3
    assert result.counterfactual.tau == pytest.approx(1 - 2 * 2 / 3)


def test_scripted_llm_in_insights():
    context = _context(3)
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: "with-d0" if "text 0" in texts else "without-d0"
    )
    evaluator = ContextEvaluator(llm, context)
    insights = analyze_combinations(evaluator, select_combinations(context))
    rule = insights.rule_for("with-d0")
    assert rule is not None
    assert rule.required_sources == ("d0",)


def test_name_reflects_script_size():
    assert "2-entries" in ScriptedLLM({("a",): "x", ("b",): "y"}).name
