"""Dataset registry and synthetic generator tests."""

import pytest

from repro.datasets import (
    DJOKOVIC_YEARS,
    WINNERS,
    available_use_cases,
    load_use_case,
    make_superlative_world,
    make_timeline_world,
    random_corpus,
)
from repro.errors import DatasetError
from repro.llm import ClaimExtractor, ClaimKind


def test_registry_lists_all_three():
    assert available_use_cases() == ["big_three", "player_of_the_year", "us_open"]


def test_unknown_use_case():
    with pytest.raises(DatasetError):
        load_use_case("nope")


@pytest.mark.parametrize("name", ["big_three", "us_open", "player_of_the_year"])
def test_use_cases_well_formed(name):
    case = load_use_case(name)
    assert case.name == name
    assert len(case.corpus) >= case.k
    assert case.query
    assert len(case.knowledge) >= 1
    if case.expected_context is not None:
        assert len(case.expected_context) == case.k
        for doc_id in case.expected_context:
            assert doc_id in case.corpus


def test_big_three_doc_claims():
    """Each Big Three document must carry its intended claim."""
    case = load_use_case("big_three")
    extractor = ClaimExtractor()
    wins = extractor.extract(case.corpus.get("bigthree-1-match-wins").text)
    assert any(
        c.kind == ClaimKind.SUPERLATIVE and c.entity == "Roger Federer" for c in wins
    )
    slams = extractor.extract(case.corpus.get("bigthree-2-grand-slams").text)
    assert any(
        c.kind == ClaimKind.RANK_FIRST and c.entity == "Novak Djokovic" for c in slams
    )
    h2h = extractor.extract(case.corpus.get("bigthree-4-head-to-head").text)
    assert any(
        c.kind == ClaimKind.RANK_FIRST and c.entity == "Rafael Nadal" for c in h2h
    )


def test_us_open_docs_have_equal_analyzed_length():
    """Equal lengths guarantee score ties, hence chronological order."""
    from repro.textproc import Tokenizer

    case = load_use_case("us_open")
    tokenizer = Tokenizer()
    lengths = {len(tokenizer.tokenize(doc.text)) for doc in case.corpus}
    assert len(lengths) == 1


def test_timeline_winners_match_paper():
    assert DJOKOVIC_YEARS == (2011, 2012, 2014, 2015, 2018)
    assert WINNERS[2016] == "Andy Murray"
    assert sum(1 for w in WINNERS.values() if w == "Rafael Nadal") == 4


def test_superlative_world_reproducible():
    a = make_superlative_world(6, seed=42)
    b = make_superlative_world(6, seed=42)
    assert a.query == b.query
    assert [d.text for d in a.corpus] == [d.text for d in b.corpus]
    assert a.endorsements == b.endorsements


def test_superlative_world_structure():
    world = make_superlative_world(8, num_candidates=4, seed=1)
    assert len(world.corpus) == 8
    assert len(world.endorsements) == 8
    assert set(world.endorsements) <= set(world.candidates)
    assert world.topic in world.query


def test_superlative_world_docs_carry_claims():
    world = make_superlative_world(10, seed=2)
    extractor = ClaimExtractor()
    for doc, endorsed in zip(world.corpus, world.endorsements):
        claims = extractor.extract(doc.text)
        assert any(c.entity == endorsed for c in claims), doc.text


def test_superlative_world_validation():
    with pytest.raises(Exception):
        make_superlative_world(0)
    with pytest.raises(Exception):
        make_superlative_world(3, num_candidates=1)


def test_timeline_world_structure():
    world = make_timeline_world(12, seed=3, start_year=1990)
    assert len(world.corpus) == 12
    assert world.year_range == (1990, 2001)
    assert all(1990 <= year <= 2001 for year in world.subject_years)
    assert world.subject in world.query


def test_timeline_world_subject_years_consistent():
    world = make_timeline_world(15, seed=4)
    extractor = ClaimExtractor()
    extracted_years = set()
    for doc in world.corpus:
        for claim in extractor.extract(doc.text):
            if claim.entity == world.subject:
                extracted_years.add(claim.year)
    assert extracted_years == set(world.subject_years)


def test_random_corpus_planted_relevant():
    corpus, relevant = random_corpus(50, seed=5, num_relevant=5)
    assert len(corpus) == 50
    assert len(relevant) == 5
    for doc_id in relevant:
        text = corpus.get(doc_id).text
        assert "needle" in text and "haystack" in text


def test_random_corpus_reproducible():
    a, _ = random_corpus(20, seed=6)
    b, _ = random_corpus(20, seed=6)
    assert [d.text for d in a] == [d.text for d in b]


def test_random_corpus_validation():
    with pytest.raises(Exception):
        random_corpus(0)
    with pytest.raises(Exception):
        random_corpus(3, num_relevant=5)
