"""Verification harness tests."""

from repro.app.cli import main
from repro.app.verify import (
    Check,
    render_checks,
    verify_all,
    verify_use_case_1,
    verify_use_case_2,
    verify_use_case_3,
)


def test_all_claims_pass():
    checks = verify_all()
    assert len(checks) == 13
    failing = [check for check in checks if not check.passed]
    assert failing == [], failing


def test_use_case_1_checks():
    checks = verify_use_case_1()
    assert len(checks) == 5
    assert all(check.use_case == "UC1" for check in checks)
    assert all(check.passed for check in checks)


def test_use_case_2_checks():
    checks = verify_use_case_2()
    assert len(checks) == 4
    assert all(check.passed for check in checks)


def test_use_case_3_checks():
    checks = verify_use_case_3()
    assert len(checks) == 4
    assert all(check.passed for check in checks)


def test_render_checks_table():
    checks = [
        Check(use_case="UC1", claim="something holds", passed=True, detail="x"),
        Check(use_case="UC2", claim="another thing", passed=False),
    ]
    text = render_checks(checks)
    assert "[PASS] something holds" in text
    assert "[FAIL] another thing" in text
    assert "1/2 paper claims reproduced" in text
    assert text.index("UC1:") < text.index("UC2:")


def test_checks_survive_errors():
    """A claim whose check raises is reported as FAIL, not an abort."""
    from repro.app.verify import _check

    checks = []
    _check(checks, "X", "exploding check", lambda: 1 / 0)
    assert len(checks) == 1
    assert not checks[0].passed
    assert "error" in checks[0].detail


def test_cli_verify(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "13/13 paper claims reproduced" in out


def test_cli_salience(capsys):
    assert main(["salience", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "bigthree-1-match-wins" in out
    assert "+1.00" in out
    assert "Order stability" in out
