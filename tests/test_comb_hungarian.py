"""Hungarian algorithm tests: optimality, duals, infeasibility."""

import math
import random

import pytest

from repro.combinatorics import (
    FORBIDDEN,
    assignment_cost,
    brute_force_assignments,
    solve_assignment,
    validate_square,
)
from repro.errors import AssignmentError


def test_trivial_1x1():
    solution = solve_assignment([[7.0]])
    assert solution.assignment == (0,)
    assert solution.cost == 7.0


def test_known_3x3():
    matrix = [
        [4.0, 1.0, 3.0],
        [2.0, 0.0, 5.0],
        [3.0, 2.0, 2.0],
    ]
    solution = solve_assignment(matrix)
    assert solution.cost == 5.0  # 1 + 2 + 2
    assert solution.assignment == (1, 0, 2)


def test_identity_preference():
    matrix = [
        [0.0, 9.0, 9.0],
        [9.0, 0.0, 9.0],
        [9.0, 9.0, 0.0],
    ]
    assert solve_assignment(matrix).assignment == (0, 1, 2)


def test_matches_bruteforce_on_random_instances():
    rng = random.Random(11)
    for _ in range(60):
        n = rng.randint(1, 7)
        matrix = [[rng.uniform(-5, 10) for _ in range(n)] for _ in range(n)]
        ours = solve_assignment(matrix)
        best = brute_force_assignments(matrix, limit=1)[0]
        assert ours.cost == pytest.approx(best.cost)


def test_negative_costs_supported():
    matrix = [[-3.0, -1.0], [-2.0, -4.0]]
    solution = solve_assignment(matrix)
    assert solution.cost == -7.0


def test_dual_feasibility():
    """Reduced costs must be >= 0 everywhere and ~0 on assigned edges."""
    rng = random.Random(23)
    for _ in range(40):
        n = rng.randint(2, 8)
        matrix = [[rng.uniform(0, 100) for _ in range(n)] for _ in range(n)]
        solution = solve_assignment(matrix)
        for i in range(n):
            for j in range(n):
                assert solution.reduced_cost(matrix, i, j) >= -1e-7
        for i, j in enumerate(solution.assignment):
            assert solution.reduced_cost(matrix, i, j) == pytest.approx(0.0, abs=1e-7)


def test_forbidden_edges_avoided():
    matrix = [
        [FORBIDDEN, 1.0],
        [1.0, FORBIDDEN],
    ]
    solution = solve_assignment(matrix)
    assert solution.assignment == (1, 0)
    assert solution.cost == 2.0


def test_infeasible_raises():
    matrix = [
        [FORBIDDEN, FORBIDDEN],
        [1.0, 1.0],
    ]
    with pytest.raises(AssignmentError):
        solve_assignment(matrix)


def test_assignment_cost_helper():
    matrix = [[1.0, 2.0], [3.0, 4.0]]
    assert assignment_cost(matrix, (0, 1)) == 5.0
    assert assignment_cost(matrix, (1, 0)) == 5.0


def test_validate_square():
    assert validate_square([[1.0]]) == 1
    with pytest.raises(AssignmentError):
        validate_square([])
    with pytest.raises(AssignmentError):
        validate_square([[1.0, 2.0]])


def test_bruteforce_sorted_and_limited():
    matrix = [[1.0, 2.0], [3.0, 4.0]]
    solutions = brute_force_assignments(matrix)
    assert [s.cost for s in solutions] == [5.0, 5.0]
    assert len(brute_force_assignments(matrix, limit=1)) == 1


def test_bruteforce_skips_forbidden():
    matrix = [[FORBIDDEN, 1.0], [1.0, FORBIDDEN]]
    solutions = brute_force_assignments(matrix)
    assert len(solutions) == 1
    assert math.isfinite(solutions[0].cost)
