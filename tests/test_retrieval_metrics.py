"""Ranked-retrieval metric tests."""

import math

import pytest

from repro.errors import ConfigError
from repro.retrieval import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)

RANKING = ["a", "b", "c", "d", "e"]


def test_precision_at_k():
    assert precision_at_k(RANKING, {"a", "c"}, 1) == 1.0
    assert precision_at_k(RANKING, {"a", "c"}, 2) == 0.5
    assert precision_at_k(RANKING, {"a", "c"}, 4) == 0.5
    assert precision_at_k(RANKING, {"z"}, 5) == 0.0


def test_precision_k_beyond_ranking():
    # k larger than the ranking penalizes missing results
    assert precision_at_k(["a"], {"a", "b"}, 2) == 0.5


def test_recall_at_k():
    assert recall_at_k(RANKING, {"a", "c"}, 1) == 0.5
    assert recall_at_k(RANKING, {"a", "c"}, 3) == 1.0
    assert recall_at_k(RANKING, {"a", "z"}, 5) == 0.5


def test_reciprocal_rank():
    assert reciprocal_rank(RANKING, {"a"}) == 1.0
    assert reciprocal_rank(RANKING, {"c"}) == pytest.approx(1 / 3)
    assert reciprocal_rank(RANKING, {"z"}) == 0.0


def test_average_precision_perfect():
    assert average_precision(["a", "b"], {"a", "b"}) == 1.0


def test_average_precision_partial():
    # relevant at ranks 1 and 3: (1/1 + 2/3) / 2
    assert average_precision(RANKING, {"a", "c"}) == pytest.approx((1 + 2 / 3) / 2)


def test_average_precision_missing_penalized():
    # one of two relevant docs never retrieved
    assert average_precision(["a", "b"], {"a", "z"}) == pytest.approx(0.5)


def test_ndcg_perfect_is_one():
    assert ndcg_at_k(["a", "b", "c"], {"a", "b"}, 3) == pytest.approx(1.0)


def test_ndcg_order_sensitivity():
    good = ndcg_at_k(["a", "b", "x"], {"a", "b"}, 3)
    bad = ndcg_at_k(["x", "a", "b"], {"a", "b"}, 3)
    assert good > bad > 0.0


def test_ndcg_known_value():
    # relevant at rank 2 only, one relevant doc total, k=2:
    # dcg = 1/log2(3); idcg = 1/log2(2) = 1
    assert ndcg_at_k(["x", "a"], {"a"}, 2) == pytest.approx(1 / math.log2(3))


def test_ndcg_no_hits():
    assert ndcg_at_k(["x", "y"], {"a"}, 2) == 0.0


def test_validation():
    with pytest.raises(ConfigError):
        precision_at_k(RANKING, {"a"}, 0)
    with pytest.raises(ConfigError):
        recall_at_k(RANKING, set(), 3)
    with pytest.raises(ConfigError):
        ndcg_at_k(RANKING, {"a"}, -1)
    with pytest.raises(ConfigError):
        reciprocal_rank(RANKING, [])


def test_metrics_bounded():
    import random

    rng = random.Random(0)
    for _ in range(50):
        ranking = [f"d{i}" for i in range(10)]
        rng.shuffle(ranking)
        relevant = set(rng.sample(ranking, rng.randint(1, 5)))
        k = rng.randint(1, 10)
        for value in (
            precision_at_k(ranking, relevant, k),
            recall_at_k(ranking, relevant, k),
            reciprocal_rank(ranking, relevant),
            average_precision(ranking, relevant),
            ndcg_at_k(ranking, relevant, k),
        ):
            assert 0.0 <= value <= 1.0
