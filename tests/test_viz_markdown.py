"""Markdown report rendering tests."""

import pytest

from repro.viz import render_report_markdown, write_report_markdown


@pytest.fixture(scope="module")
def report(big_three):
    from tests.conftest import make_engine

    return make_engine(big_three).explain(big_three.query)


@pytest.fixture(scope="module")
def markdown(report):
    return render_report_markdown(report)


def test_headline_sections(markdown):
    assert markdown.startswith("# RAGE explanation report")
    assert "## Combination insights" in markdown
    assert "## Permutation insights" in markdown
    assert "## Counterfactual explanations" in markdown
    assert "## Optimal permutations" in markdown


def test_answer_and_context(markdown):
    assert "**Full-context answer:** **Roger Federer**" in markdown
    assert "`bigthree-1-match-wins`" in markdown


def test_tables_well_formed(markdown):
    """Every Markdown table row has a consistent column count."""
    lines = markdown.splitlines()
    index = 0
    tables = 0
    while index < len(lines):
        line = lines[index]
        if line.startswith("|") and index + 1 < len(lines) and set(
            lines[index + 1].replace("|", "").strip()
        ) <= {"-"}:
            tables += 1
            columns = line.count("|")
            row = index + 2
            while row < len(lines) and lines[row].startswith("|"):
                assert lines[row].count("|") == columns, lines[row]
                row += 1
            index = row
        else:
            index += 1
    assert tables >= 3  # combo distribution, combo table, perm distribution


def test_rules_as_blockquotes(markdown):
    assert "> every combination answering 'Roger Federer' included" in markdown


def test_counterfactual_lines(markdown):
    assert "**Top-down:** Removing `bigthree-1-match-wins`" in markdown
    assert "**Bottom-up:** Retaining only" in markdown
    assert "Kendall tau" in markdown


def test_truncation(report):
    markdown = render_report_markdown(report, max_rows=3)
    assert "more rows*" in markdown


def test_write_report_markdown(tmp_path, report):
    path = tmp_path / "report.md"
    write_report_markdown(report, str(path))
    content = path.read_text(encoding="utf-8")
    assert content.startswith("# RAGE explanation report")


def test_stable_context_note(potya_engine, player_of_the_year):
    report = potya_engine.explain(player_of_the_year.query, sample_size=10)
    markdown = render_report_markdown(report)
    assert "stable under every analyzed order" in markdown
