"""Runtime lock-order watchdog: the dynamic twin of ``lock-order``."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import watchdog as wd
from repro.analysis.watchdog import (
    LockOrderViolation,
    LockWatchdog,
    _LockProxy,
)


def proxied_pair(watchdog):
    """Two instrumented locks at distinct synthetic creation sites."""
    lock_a = _LockProxy(watchdog, threading.Lock(), "fake.py:1")
    lock_b = _LockProxy(watchdog, threading.Lock(), "fake.py:2")
    return lock_a, lock_b


# ---------------------------------------------------------------------------
# cycle detection


def test_forced_inversion_raises_before_deadlocking():
    watchdog = LockWatchdog()
    lock_a, lock_b = proxied_pair(watchdog)
    a_then_b_done = threading.Event()
    caught = []

    def leg_one():
        with lock_a:
            with lock_b:
                pass
        a_then_b_done.set()

    def leg_two():
        a_then_b_done.wait(timeout=5)
        try:
            with lock_b:
                with lock_a:  # inversion: closes fake.py:1 -> fake.py:2
                    pass
        except LockOrderViolation as exc:
            caught.append(exc)

    threads = [
        threading.Thread(target=leg_one),
        threading.Thread(target=leg_two),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)

    assert len(caught) == 1
    message = str(caught[0])
    assert "closes cycle [fake.py:1 -> fake.py:2 -> fake.py:1]" in message
    assert "witness" in message
    assert len(watchdog.violations) == 1
    assert watchdog.violations[0]["cycle"] == ["fake.py:1", "fake.py:2"]


def test_consistent_order_is_clean():
    watchdog = LockWatchdog()
    lock_a, lock_b = proxied_pair(watchdog)
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    assert watchdog.violations == []
    assert ("fake.py:1", "fake.py:2") in watchdog.edges


def test_same_site_sibling_instances_add_no_edges():
    # Two latches born at the same line (a per-request lock in a loop)
    # are one logical lock: nesting them must not fabricate an edge
    # that later "inverts" against itself.
    watchdog = LockWatchdog()
    first = _LockProxy(watchdog, threading.Lock(), "fake.py:7")
    second = _LockProxy(watchdog, threading.Lock(), "fake.py:7")
    with first:
        with second:
            pass
    with second:
        with first:
            pass
    assert watchdog.edges == {}
    assert watchdog.violations == []


def test_self_reacquire_of_plain_lock_is_a_violation():
    watchdog = LockWatchdog()
    lock = _LockProxy(watchdog, threading.Lock(), "fake.py:3")
    # Hold something else first so the held-stack path is exercised.
    other = _LockProxy(watchdog, threading.Lock(), "fake.py:4")
    with pytest.raises(LockOrderViolation, match="self-deadlock"):
        with other:
            with lock:
                lock.acquire()
    assert watchdog.violations[-1]["cycle"] == ["fake.py:3"]


def test_rlock_reacquire_is_fine():
    watchdog = LockWatchdog()
    rlock = _LockProxy(watchdog, threading.RLock(), "fake.py:5", reentrant=True)
    with rlock:
        with rlock:
            pass
    assert watchdog.violations == []


def test_condition_over_proxied_lock_routes_through_proxy():
    watchdog = LockWatchdog()
    lock = _LockProxy(watchdog, threading.Lock(), "fake.py:6")
    condition = threading.Condition(lock)
    with condition:
        condition.notify_all()
    assert watchdog.violations == []
    assert not lock.locked()


# ---------------------------------------------------------------------------
# install / uninstall


@pytest.fixture()
def no_session_watchdog():
    """Park the conftest-installed watchdog (if any) for one test."""
    session_watchdog = wd.installed()
    if session_watchdog is not None:
        wd.uninstall()
    try:
        yield
    finally:
        wd.uninstall()
        if session_watchdog is not None:
            wd.install(session_watchdog)


def test_install_patches_and_uninstall_restores(no_session_watchdog):
    assert wd.installed() is None
    watchdog = wd.install(LockWatchdog(roots=("/",)))
    assert wd.installed() is watchdog
    assert wd.install() is watchdog  # idempotent
    lock = threading.Lock()
    assert isinstance(lock, _LockProxy)
    with lock:
        pass
    rlock = threading.RLock()
    assert isinstance(rlock, _LockProxy)
    wd.uninstall()
    assert wd.installed() is None
    assert not isinstance(threading.Lock(), _LockProxy)


def test_roots_filter_leaves_foreign_locks_uninstrumented(
    no_session_watchdog, tmp_path
):
    watchdog = wd.install(LockWatchdog(roots=(str(tmp_path),)))
    # This test file is outside the configured root: the factory
    # hands back a plain, untracked lock.
    lock = threading.Lock()
    assert not isinstance(lock, _LockProxy)
    assert watchdog.sites == {}


# ---------------------------------------------------------------------------
# report schema (uploaded by CI next to analysis-report.json)


def test_report_digest_schema():
    watchdog = LockWatchdog()
    lock_a, lock_b = proxied_pair(watchdog)
    watchdog.sites["fake.py:1"] = "lock"
    watchdog.sites["fake.py:2"] = "lock"
    with lock_a:
        with lock_b:
            pass
    report = watchdog.report()
    assert report["version"] == 1
    assert report["sites"] == {"fake.py:1": "lock", "fake.py:2": "lock"}
    [edge] = report["edges"]
    assert edge["outer"] == "fake.py:1"
    assert edge["inner"] == "fake.py:2"
    assert "while holding" in edge["witness"]
    assert report["violations"] == []
