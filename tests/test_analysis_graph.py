"""Units for the whole-program layer: symbols, call graph, lock model."""

from __future__ import annotations

import textwrap

from repro.analysis.graph import (
    CallGraph,
    LockModel,
    ProjectIndex,
    find_cycle_closing,
    find_cycles,
    summarize,
)
from repro.analysis.source import SourceFile, build_import_map, module_name_for


def index_of(*items):
    """Build a ProjectIndex from ``(rel, text)`` snippets."""
    summaries = []
    for rel, text in items:
        summaries.append(summarize(SourceFile(rel, textwrap.dedent(text))))
    return ProjectIndex(summaries)


# ---------------------------------------------------------------------------
# module names and import maps


def test_module_name_for_strips_src_and_init():
    assert module_name_for("src/repro/llm/cache.py") == "repro.llm.cache"
    assert module_name_for("src/repro/llm/__init__.py") == "repro.llm"
    assert module_name_for("tests/test_x.py") == "tests.test_x"


def test_import_map_resolves_aliases_and_relatives():
    import ast

    tree = ast.parse(
        "import random as rnd\n"
        "from time import sleep as zzz\n"
        "from .coalesce import SingleFlight\n"
        "from ..core import context\n"
    )
    imports = build_import_map(tree, module="repro.llm.cache")
    assert imports["rnd"] == "random"
    assert imports["zzz"] == "time.sleep"
    assert imports["SingleFlight"] == "repro.llm.coalesce.SingleFlight"
    assert imports["context"] == "repro.core.context"


# ---------------------------------------------------------------------------
# extraction


STORE = """
    import threading

    class Store:
        def __init__(self):
            self._stats_lock = threading.Lock()
            self._evict_lock = threading.Lock()
            self.hits = 0

        def put(self, key):
            with self._evict_lock:
                with self._stats_lock:
                    self.hits += 1

        def helper(self):
            self.put("x")
"""


def test_summarize_records_locks_and_held_acquisitions():
    index = index_of(("src/repro/llm/store.py", STORE))
    cls = index.classes["repro.llm.store.Store"]
    assert set(cls.locks) == {"_stats_lock", "_evict_lock"}
    assert cls.locks["_stats_lock"].kind == "lock"
    put = index.functions["repro.llm.store.Store.put"]
    held = {(a.ref, a.held) for a in put.acquisitions}
    assert ("self._evict_lock", ()) in held
    assert ("self._stats_lock", ("self._evict_lock",)) in held


def test_summarize_records_module_locks_and_body():
    index = index_of(
        (
            "src/repro/llm/mod.py",
            """
            import threading

            GLOBAL_LOCK = threading.Lock()

            with GLOBAL_LOCK:
                SETUP = 1
            """,
        )
    )
    module = index.modules["repro.llm.mod"]
    assert module.module_locks["GLOBAL_LOCK"].kind == "lock"
    body = index.functions["repro.llm.mod.<body>"]
    assert [a.ref for a in body.acquisitions] == ["GLOBAL_LOCK"]


def test_summarize_condition_alias_and_blocking_reasons():
    index = index_of(
        (
            "src/repro/app/srv.py",
            """
            import threading
            import time

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._idle = threading.Condition(self._lock)

                def slow(self):
                    with self._lock:
                        time.sleep(1)
            """,
        )
    )
    cls = index.classes["repro.app.srv.Server"]
    assert cls.locks["_idle"].kind == "condition"
    assert cls.locks["_idle"].alias_of == "_lock"
    slow = index.functions["repro.app.srv.Server.slow"]
    blocking = [c for c in slow.calls if c.blocking is not None]
    assert len(blocking) == 1
    assert blocking[0].held == ("self._lock",)
    assert "sleep" in blocking[0].blocking


# ---------------------------------------------------------------------------
# call graph


def test_callgraph_resolves_bare_and_dotted_calls():
    index = index_of(
        (
            "src/repro/a.py",
            """
            from repro import b

            def caller():
                local()
                b.helper()

            def local():
                pass
            """,
        ),
        (
            "src/repro/b.py",
            """
            def helper():
                pass
            """,
        ),
    )
    graph = CallGraph(index)
    callees = graph.callees("repro.a.caller")
    assert "repro.a.local" in callees
    assert "repro.b.helper" in callees


def test_callgraph_resolves_self_dispatch_through_inheritance():
    index = index_of(
        (
            "src/repro/base.py",
            """
            class Base:
                def run(self):
                    self.step()

                def step(self):
                    pass
            """,
        ),
        (
            "src/repro/sub.py",
            """
            from repro.base import Base

            class Sub(Base):
                def step(self):
                    pass
            """,
        ),
    )
    graph = CallGraph(index)
    callees = graph.callees("repro.base.Base.run")
    # The declared method and the subclass override both participate:
    # `self` may be a Sub at runtime.
    assert callees == {"repro.base.Base.step", "repro.sub.Sub.step"}


def test_callgraph_resolves_attr_calls_through_attribute_types():
    index = index_of(
        (
            "src/repro/a.py",
            """
            from repro.b import Inner

            class Outer:
                def __init__(self, inner: Inner):
                    self.inner = inner

                def go(self):
                    self.inner.work()
            """,
        ),
        (
            "src/repro/b.py",
            """
            class Inner:
                def work(self):
                    pass
            """,
        ),
    )
    graph = CallGraph(index)
    assert graph.callees("repro.a.Outer.go") == {"repro.b.Inner.work"}


def test_callgraph_leaves_unknown_targets_unresolved():
    index = index_of(
        (
            "src/repro/a.py",
            """
            def caller(thing):
                thing.mystery()
                unknown_function()
            """,
        )
    )
    graph = CallGraph(index)
    assert graph.callees("repro.a.caller") == set()


# ---------------------------------------------------------------------------
# lock model


def test_lock_ids_name_the_defining_class():
    index = index_of(
        (
            "src/repro/base.py",
            """
            import threading

            class Base:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
        ),
        (
            "src/repro/sub.py",
            """
            import threading
            from repro.base import Base

            class Sub(Base):
                def use(self):
                    with self._lock:
                        pass
            """,
        ),
    )
    model = LockModel(index)
    use = index.functions["repro.sub.Sub.use"]
    # The subclass resolves the inherited attribute to the base's id.
    assert model.resolve_ref(use, "self._lock") == "repro.base.Base._lock"


def test_condition_aliases_collapse_to_the_wrapped_lock():
    index = index_of(
        (
            "src/repro/srv.py",
            """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._idle = threading.Condition(self._lock)

                def wait_idle(self):
                    with self._idle:
                        pass
            """,
        )
    )
    model = LockModel(index)
    func = index.functions["repro.srv.Server.wait_idle"]
    assert model.resolve_ref(func, "self._idle") == "repro.srv.Server._lock"


def test_may_acquire_propagates_over_calls_with_witness_chain():
    index = index_of(
        (
            "src/repro/a.py",
            """
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    self.middle()

                def middle(self):
                    self.leaf()

                def leaf(self):
                    with self._lock:
                        pass
            """,
        )
    )
    model = LockModel(index)
    lock = "repro.a.Thing._lock"
    assert lock in model.may_acquire["repro.a.Thing.outer"]
    chain = model.witness_chain("repro.a.Thing.outer", lock)
    assert len(chain) == 3
    assert "calls repro.a.Thing.middle" in chain[0]
    assert "acquires repro.a.Thing._lock" in chain[-1]


# ---------------------------------------------------------------------------
# cycle machinery


def test_find_cycles_canonical_and_self_edges():
    edges = [("b", "a"), ("a", "b"), ("c", "c"), ("a", "c")]
    cycles = find_cycles(edges)
    assert ("c",) in cycles
    assert ("a", "b") in cycles
    # Rotations are not double-counted.
    assert ("b", "a") not in cycles


def test_find_cycle_closing_returns_shortest_witness_path():
    edges = [("a", "b"), ("b", "c")]
    # Acquiring a while holding c: a reaches c? a->b->c, so closing
    # edge c->a completes the cycle.
    path = find_cycle_closing(edges, "c", "a")
    assert path == ("a", "b", "c")
    assert find_cycle_closing(edges, "a", "b") is None
    assert find_cycle_closing(edges, "a", "a") == ("a",)
