"""Single-flight coalescing: thundering herds pay exactly one call.

Covers the :mod:`repro.llm.coalesce` primitives (Latch, SingleFlight)
and their integration into :class:`~repro.llm.cache.CachingLLM`: N
concurrent misses on one key — threads or asyncio tasks, with or
without a disk store — produce exactly one inner call and identical
results for every caller; a failing flight reaches every waiter and
never poisons the registry.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.errors import GenerationError
from repro.llm.base import GenerationResult
from repro.llm.cache import CachingLLM
from repro.llm.coalesce import Latch, SingleFlight
from repro.llm.store import PromptStore

HERD = 16


class GatedLLM:
    """Deterministic answers; the first call blocks until released.

    ``entered`` fires when a call reaches the model, so a test can be
    certain the leader is in flight before unleashing the herd's
    followers; ``calls`` counts every prompt that got through.
    """

    name = "gated-llm"

    def __init__(self, gate: threading.Event = None, fail_times: int = 0) -> None:
        self.gate = gate
        self.fail_times = fail_times
        self.entered = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def generate(self, prompt: str) -> GenerationResult:
        with self._lock:
            self.calls += 1
        self.entered.set()
        if self.gate is not None:
            assert self.gate.wait(10.0), "test gate never released"
        with self._lock:
            if self.fail_times > 0:
                self.fail_times -= 1
                raise GenerationError("inner model exploded")
        return GenerationResult(answer=f"answer:{prompt}", prompt=prompt)


def _await(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.002)


def _run_herd(cached, prompt, n=HERD):
    """Fire n threads at one prompt; return (results, errors)."""
    barrier = threading.Barrier(n)
    results = [None] * n
    errors = [None] * n

    def worker(i):
        barrier.wait()
        try:
            results[i] = cached.generate(prompt)
        except BaseException as error:  # noqa: BLE001 - recorded for asserts
            errors[i] = error

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    return threads, results, errors


# ---------------------------------------------------------------------------
# Thundering herd — threads


def test_thundering_herd_threads_single_inner_call():
    gate = threading.Event()
    inner = GatedLLM(gate=gate)
    cached = CachingLLM(inner)
    threads, results, errors = _run_herd(cached, "same prompt")
    inner.entered.wait(5.0)
    # Every non-leader must have joined the flight before it resolves.
    _await(lambda: cached.flights.stats.coalesced == HERD - 1)
    assert cached.flights.inflight() == 1
    gate.set()
    for t in threads:
        t.join(timeout=10.0)
    assert errors == [None] * HERD
    assert inner.calls == 1
    assert {r.answer for r in results} == {"answer:same prompt"}
    assert cached.flights.stats.flights == 1
    assert cached.flights.inflight() == 0
    assert cached.stats.misses == 1
    assert cached.stats.hits == HERD - 1


def test_thundering_herd_with_disk_store_writes_once(tmp_path):
    gate = threading.Event()
    inner = GatedLLM(gate=gate)
    store = PromptStore(str(tmp_path / "store"))
    cached = CachingLLM(inner, store=store)
    threads, results, errors = _run_herd(cached, "persisted prompt")
    inner.entered.wait(5.0)
    _await(lambda: cached.flights.stats.coalesced == HERD - 1)
    gate.set()
    for t in threads:
        t.join(timeout=10.0)
    assert errors == [None] * HERD
    assert inner.calls == 1
    assert store.stats.writes == 1  # the winner writes through exactly once
    assert {r.answer for r in results} == {"answer:persisted prompt"}
    # A fresh wrapper over the same store answers warm, no real call.
    rewarmed = CachingLLM(GatedLLM(), store=store)
    assert rewarmed.generate("persisted prompt").answer == "answer:persisted prompt"
    assert rewarmed.inner.calls == 0


def test_single_flight_off_dispatches_every_concurrent_miss():
    gate = threading.Event()
    inner = GatedLLM(gate=gate)
    cached = CachingLLM(inner, single_flight=False)
    assert cached.flights is None
    threads, results, errors = _run_herd(cached, "same prompt", n=4)
    _await(lambda: inner.calls == 4)  # nobody coalesces: all four dispatch
    gate.set()
    for t in threads:
        t.join(timeout=10.0)
    assert errors == [None] * 4
    assert inner.calls == 4
    assert {r.answer for r in results} == {"answer:same prompt"}


def test_distinct_prompts_do_not_coalesce():
    inner = GatedLLM()
    cached = CachingLLM(inner)
    barrier = threading.Barrier(2)
    outs = [None, None]

    def worker(i, prompt):
        barrier.wait()
        outs[i] = cached.generate(prompt)

    threads = [
        threading.Thread(target=worker, args=(i, f"prompt-{i}")) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert inner.calls == 2
    assert outs[0].answer == "answer:prompt-0"
    assert outs[1].answer == "answer:prompt-1"


# ---------------------------------------------------------------------------
# Thundering herd — asyncio


class AsyncGatedLLM:
    """Async-only model whose first call parks on a loop-native event."""

    name = "async-gated-llm"

    def __init__(self) -> None:
        self.calls = 0
        self.entered = asyncio.Event()
        self.gate = asyncio.Event()

    async def agenerate(self, prompt: str) -> GenerationResult:
        self.calls += 1
        self.entered.set()
        await asyncio.wait_for(self.gate.wait(), timeout=10.0)
        return GenerationResult(answer=f"answer:{prompt}", prompt=prompt)


def test_thundering_herd_async_single_inner_call():
    async def scenario():
        inner = AsyncGatedLLM()
        cached = CachingLLM(inner)
        tasks = [
            asyncio.ensure_future(cached.agenerate("same prompt"))
            for _ in range(HERD)
        ]
        await asyncio.wait_for(inner.entered.wait(), timeout=10.0)
        while cached.flights.stats.coalesced < HERD - 1:
            await asyncio.sleep(0.002)
        inner.gate.set()
        return inner, await asyncio.gather(*tasks)

    inner, results = asyncio.run(scenario())
    assert inner.calls == 1
    assert {r.answer for r in results} == {"answer:same prompt"}


def test_async_herd_failure_reaches_all_and_registry_recovers():
    class ExplodingLLM:
        name = "exploding-llm"

        def __init__(self):
            self.calls = 0

        async def agenerate(self, prompt):
            self.calls += 1
            await asyncio.sleep(0.01)  # stay in flight long enough to coalesce
            raise GenerationError("async inner exploded")

    async def scenario():
        inner = ExplodingLLM()
        cached = CachingLLM(inner)
        tasks = [
            asyncio.ensure_future(cached.agenerate("doomed prompt"))
            for _ in range(4)
        ]
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        return cached, outcomes

    cached, outcomes = asyncio.run(scenario())
    assert all(isinstance(o, GenerationError) for o in outcomes)
    assert cached.flights.inflight() == 0  # registry not poisoned


# ---------------------------------------------------------------------------
# Failure propagation


def test_failure_reaches_every_waiter_and_next_request_retries():
    gate = threading.Event()
    inner = GatedLLM(gate=gate, fail_times=1)
    cached = CachingLLM(inner)
    threads, results, errors = _run_herd(cached, "flaky prompt")
    inner.entered.wait(5.0)
    _await(lambda: cached.flights.stats.coalesced == HERD - 1)
    gate.set()
    for t in threads:
        t.join(timeout=10.0)
    assert results == [None] * HERD
    assert all(isinstance(e, GenerationError) for e in errors)
    assert inner.calls == 1  # the herd shared the one doomed flight
    assert cached.flights.stats.failures == 1
    assert cached.flights.inflight() == 0
    # The registry entry died with the flight: a retry dispatches fresh.
    retried = cached.generate("flaky prompt")
    assert retried.answer == "answer:flaky prompt"
    assert inner.calls == 2


# ---------------------------------------------------------------------------
# Batch entry points


def test_batch_follows_anothers_flight_and_dispatches_only_its_own():
    gate = threading.Event()
    inner = GatedLLM(gate=gate)
    cached = CachingLLM(inner)
    leader_out = []
    leader = threading.Thread(
        target=lambda: leader_out.append(cached.generate("shared"))
    )
    leader.start()
    inner.entered.wait(5.0)

    batch_out = []
    follower = threading.Thread(
        target=lambda: batch_out.append(cached.generate_batch(["shared", "solo"]))
    )
    follower.start()
    # The batch must dispatch its own miss and then block on the flight.
    _await(lambda: cached.flights.stats.coalesced == 1)
    _await(lambda: inner.calls == 2)  # "shared" (leader) + "solo" (batch)
    assert not batch_out  # still waiting on the shared flight
    gate.set()
    leader.join(timeout=10.0)
    follower.join(timeout=10.0)
    assert [r.answer for r in batch_out[0]] == ["answer:shared", "answer:solo"]
    assert inner.calls == 2
    # The coalesced prompt is charged as a hit: no real call was paid.
    assert cached.stats.hits >= 1


def test_batch_failure_rejects_all_led_flights():
    inner = GatedLLM(fail_times=1)
    cached = CachingLLM(inner)
    with pytest.raises(GenerationError):
        cached.generate_batch(["a", "b"])
    assert cached.flights.inflight() == 0
    # Both keys retry cleanly afterwards.
    results = cached.generate_batch(["a", "b"])
    assert [r.answer for r in results] == ["answer:a", "answer:b"]


def test_async_batch_coalesces_with_sync_flight():
    gate = threading.Event()
    inner = GatedLLM(gate=gate)
    cached = CachingLLM(inner)
    leader = threading.Thread(target=lambda: cached.generate("shared"))
    leader.start()
    inner.entered.wait(5.0)

    async def scenario():
        task = asyncio.ensure_future(cached.agenerate_batch(["shared"]))
        while cached.flights.stats.coalesced < 1:
            await asyncio.sleep(0.002)
        gate.set()
        return await task

    results = asyncio.run(scenario())
    leader.join(timeout=10.0)
    assert [r.answer for r in results] == ["answer:shared"]
    assert inner.calls == 1


# ---------------------------------------------------------------------------
# Latch / SingleFlight primitives


def test_latch_settles_exactly_once():
    latch = Latch()
    latch.resolve("first")
    latch.reject(RuntimeError("late"))  # ignored: already settled
    assert latch.wait() == "first"
    assert latch.settled


def test_latch_reject_raises_for_every_waiter():
    latch = Latch()
    error = RuntimeError("boom")
    latch.reject(error)
    for _ in range(3):
        with pytest.raises(RuntimeError):
            latch.wait()


def test_latch_async_wait_after_settlement_returns_immediately():
    async def scenario():
        latch = Latch()
        latch.resolve(41)
        return await latch.wait_async()

    assert asyncio.run(scenario()) == 41


def test_single_flight_join_leader_then_followers():
    flights = SingleFlight()
    leader, latch = flights.join("k")
    assert leader
    for _ in range(3):
        again, same = flights.join("k")
        assert not again
        assert same is latch
    assert flights.inflight() == 1
    flights.resolve("k", latch, "value")
    assert flights.inflight() == 0
    assert flights.stats.flights == 1
    assert flights.stats.coalesced == 3
    assert latch.wait() == "value"


def test_single_flight_reject_clears_key_for_retry():
    flights = SingleFlight()
    _, latch = flights.join("k")
    flights.reject("k", latch, RuntimeError("boom"))
    assert flights.inflight() == 0
    leader, fresh = flights.join("k")
    assert leader and fresh is not latch
    assert flights.stats.failures == 1
