"""Lazy inversion-ordered permutation generation tests."""

import itertools
import math

import pytest

from repro.combinatorics import (
    count_inversions,
    kendall_tau,
    max_inversions,
    permutations_by_inversions,
    permutations_by_tau,
)
from repro.errors import ConfigError


def test_max_inversions():
    assert max_inversions(1) == 0
    assert max_inversions(4) == 6
    assert max_inversions(10) == 45


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
def test_enumerates_exactly_all_permutations(k):
    items = list(range(k))
    generated = [order for order, _ in permutations_by_inversions(items)]
    assert len(generated) == math.factorial(k)
    assert set(generated) == set(itertools.permutations(items))


@pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
def test_inversion_counts_correct(k):
    items = list(range(k))
    for order, claimed in permutations_by_inversions(items):
        positions = [items.index(x) for x in order]
        assert count_inversions(positions) == claimed


@pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
def test_nondecreasing_inversions(k):
    counts = [count for _, count in permutations_by_inversions(list(range(k)))]
    assert counts == sorted(counts)
    assert counts[0] == 0
    assert counts[-1] == max_inversions(k)


def test_identity_first_reversal_last():
    items = ["a", "b", "c", "d"]
    generated = [order for order, _ in permutations_by_inversions(items)]
    assert generated[0] == ("a", "b", "c", "d")
    assert generated[-1] == ("d", "c", "b", "a")


def test_lazy_prefix_cost():
    """Consuming a prefix must not require enumerating 15!."""
    items = list(range(15))
    stream = permutations_by_inversions(items)
    first_hundred = list(itertools.islice(stream, 100))
    assert len(first_hundred) == 100
    assert first_hundred[0][1] == 0
    # inversions stay tiny within the first hundred orders of k=15
    assert all(count <= 3 for _, count in first_hundred)


def test_permutations_by_tau_matches_kendall():
    items = ["w", "x", "y", "z"]
    for order, tau in permutations_by_tau(items):
        assert tau == pytest.approx(kendall_tau(items, order))


def test_permutations_by_tau_decreasing():
    taus = [tau for _, tau in permutations_by_tau(list(range(5)))]
    assert taus == sorted(taus, reverse=True)


def test_identity_excluded_by_default():
    items = [0, 1, 2]
    orders = [order for order, _ in permutations_by_tau(items)]
    assert tuple(items) not in orders
    with_identity = [
        order for order, _ in permutations_by_tau(items, include_identity=True)
    ]
    assert with_identity[0] == tuple(items)


def test_empty_and_singleton():
    assert list(permutations_by_inversions([])) == [((), 0)]
    assert list(permutations_by_inversions(["only"])) == [(("only",), 0)]


def test_duplicate_items_rejected():
    with pytest.raises(ConfigError):
        list(permutations_by_inversions(["a", "a"]))


def test_deterministic():
    a = list(itertools.islice(permutations_by_inversions(list(range(8))), 50))
    b = list(itertools.islice(permutations_by_inversions(list(range(8))), 50))
    assert a == b
