"""Claim extraction tests."""

import pytest

from repro.llm import ClaimExtractor, ClaimKind, split_sentences


@pytest.fixture(scope="module")
def extractor():
    return ClaimExtractor()


def test_split_sentences():
    parts = split_sentences("One. Two! Three? Four; five.")
    assert parts == ["One.", "Two!", "Three?", "Four;", "five."]
    assert split_sentences("") == []


def test_award_won_the_in(extractor):
    claims = extractor.extract("Coco Gauff won the US Open championship in 2023.")
    assert len(claims) == 1
    claim = claims[0]
    assert claim.kind == ClaimKind.AWARD
    assert claim.entity == "Coco Gauff"
    assert claim.year == 2023


def test_award_was_won_by(extractor):
    claims = extractor.extract(
        "The 2019 US Open women's singles championship was won by Bianca Andreescu."
    )
    assert claims[0].entity == "Bianca Andreescu"
    assert claims[0].year == 2019


def test_award_went_to(extractor):
    claims = extractor.extract("The 2016 award went to Andy Murray.")
    assert claims[0].entity == "Andy Murray"
    assert claims[0].year == 2016


def test_award_claimed_the(extractor):
    claims = extractor.extract("Iga Swiatek claimed the 2022 US Open title.")
    assert claims[0].entity == "Iga Swiatek"
    assert claims[0].year == 2022


def test_award_is_the_champion(extractor):
    claims = extractor.extract("Coco Gauff is the 2023 US Open champion.")
    assert claims[0].entity == "Coco Gauff"
    assert claims[0].year == 2023


def test_superlative_considered_best(extractor):
    claims = extractor.extract(
        "Roger Federer is widely considered the best tennis player of his era."
    )
    assert claims[0].kind == ClaimKind.SUPERLATIVE
    assert claims[0].entity == "Roger Federer"


def test_superlative_is_the_greatest(extractor):
    claims = extractor.extract("Many argue the greatest player of all time is Serena Williams.")
    assert any(
        c.kind == ClaimKind.SUPERLATIVE and c.entity == "Serena Williams" for c in claims
    )


def test_rank_first(extractor):
    claims = extractor.extract("Roger Federer ranks first with 369 match wins.")
    assert claims[0].kind == ClaimKind.RANK_FIRST
    assert claims[0].entity == "Roger Federer"
    assert claims[0].value == "369"


def test_leads_with(extractor):
    claims = extractor.extract("Novak Djokovic leads the list with 428 weeks.")
    assert claims[0].kind == ClaimKind.RANK_FIRST
    assert claims[0].entity == "Novak Djokovic"
    assert claims[0].value == "428"


def test_enumerated_list(extractor):
    claims = extractor.extract("The ranking: 1. Ann Chovey, 2. Bill Board.")
    rank_claims = [c for c in claims if c.kind == ClaimKind.RANK_FIRST]
    assert rank_claims and rank_claims[0].entity == "Ann Chovey"


def test_no_claims_in_plain_text(extractor):
    assert extractor.extract("the weather was pleasant and mild all week") == []


def test_entity_stops_at_lowercase(extractor):
    claims = extractor.extract(
        "The 2010 award was won by Rafael Nadal after a dominant season."
    )
    assert claims[0].entity == "Rafael Nadal"


def test_multiple_claims_multiple_sentences(extractor):
    text = (
        "Alice Springs won the marathon cup in 2018. "
        "Betty Crocker won the marathon cup in 2019."
    )
    claims = extractor.extract(text)
    assert {(c.entity, c.year) for c in claims} == {
        ("Alice Springs", 2018),
        ("Betty Crocker", 2019),
    }


def test_dedupe_within_sentence(extractor):
    # Two patterns can match the same fact; only one claim must survive.
    claims = extractor.extract("Coco Gauff won the 2023 US Open title in 2023.")
    keys = [(c.entity_key, c.kind, c.year) for c in claims]
    assert len(keys) == len(set(keys))


def test_claim_terms_populated(extractor):
    claims = extractor.extract("Coco Gauff won the US Open championship in 2023.")
    assert "championship" in claims[0].terms or any(
        t.startswith("championship"[:8]) for t in claims[0].terms
    )
    assert claims[0].sentence.startswith("Coco Gauff")


def test_entity_key_normalized(extractor):
    claims = extractor.extract("Iga Świątek won the tournament cup in 2022.")
    assert claims[0].entity_key == "iga swiatek"
