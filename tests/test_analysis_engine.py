"""Engine-level suites: suppressions, baselines, CLI contract, wiring."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import analyze_paths, analyze_source, all_checkers
from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import PARSE_ERROR_RULE
from repro.analysis.model import Finding, checkers_for_rules
from repro.analysis.source import SourceFile
from repro.app.cli import main as rage_main
from repro.errors import ConfigError

LIB = "src/repro/llm/snippet.py"

#: A library fixture that trips error-taxonomy exactly once.
BAD_SNIPPET = """\
def check(n):
    if n < 0:
        raise ValueError("bad n")
    return n
"""


def _write_pkg(root, text=BAD_SNIPPET):
    target = root / "src" / "repro" / "llm"
    target.mkdir(parents=True)
    (target / "snippet.py").write_text(text, encoding="utf-8")
    return target / "snippet.py"


# ---------------------------------------------------------------------------
# Suppression parsing


def test_trailing_suppression_silences_only_named_rule():
    source = SourceFile(
        LIB,
        'def f():\n    raise ValueError("x")  # repro: disable=error-taxonomy\n',
    )
    assert source.suppressed("error-taxonomy", 2)
    assert not source.suppressed("lock-discipline", 2)
    assert not source.suppressed("error-taxonomy", 1)


def test_standalone_suppression_guards_next_code_line():
    source = SourceFile(
        LIB,
        textwrap.dedent(
            """\
            def f():
                # repro: disable=error-taxonomy -- spans a comment
                # (justification continues here)
                raise ValueError("x")
            """
        ),
    )
    assert source.suppressed("error-taxonomy", 4)
    assert not source.suppressed("error-taxonomy", 2)


def test_disable_all_and_comma_lists():
    source = SourceFile(
        LIB,
        "x = 1  # repro: disable=all\n"
        "y = 2  # repro: disable=error-taxonomy, determinism\n",
    )
    assert source.suppressed("anything", 1)
    assert source.suppressed("determinism", 2)
    assert not source.suppressed("lock-discipline", 2)


def test_suppressed_findings_are_counted_not_reported():
    result = analyze_source(
        'def f():\n    raise ValueError("x")  # repro: disable=error-taxonomy\n',
        rel=LIB,
    )
    assert result.findings == []
    assert result.suppressed == 1


# ---------------------------------------------------------------------------
# Parse failures


def test_unparsable_file_yields_parse_error_finding():
    result = analyze_source("def broken(:\n", rel=LIB)
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.rule == PARSE_ERROR_RULE
    assert finding.line == 1


# ---------------------------------------------------------------------------
# Baseline round trip


def test_baseline_round_trip(tmp_path):
    findings = [
        Finding(path="a.py", line=3, rule="error-taxonomy", message="m"),
        Finding(path="a.py", line=9, rule="error-taxonomy", message="m"),
        Finding(path="b.py", line=1, rule="determinism", message="m"),
    ]
    path = tmp_path / "baseline.json"
    write_baseline(path, findings)
    baseline = load_baseline(path)
    assert baseline == {
        "a.py": {"error-taxonomy": 2},
        "b.py": {"determinism": 1},
    }
    reported, waived = apply_baseline(findings, baseline)
    assert reported == []
    assert waived == 3


def test_baseline_waives_earliest_lines_first():
    findings = [
        Finding(path="a.py", line=30, rule="r", message="new"),
        Finding(path="a.py", line=5, rule="r", message="old"),
    ]
    reported, waived = apply_baseline(findings, {"a.py": {"r": 1}})
    assert waived == 1
    assert [f.line for f in reported] == [30]


def test_baseline_rejects_bad_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99}', encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(path)
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# CLI contract (exit codes: 0 clean, 1 findings, 2 config errors)


def test_cli_reports_findings_with_exit_1(tmp_path, capsys):
    _write_pkg(tmp_path)
    code = lint_main(["--root", str(tmp_path), "src"])
    out = capsys.readouterr().out
    assert code == 1
    assert "src/repro/llm/snippet.py:3: [error-taxonomy]" in out


def test_cli_clean_run_exits_0(tmp_path, capsys):
    _write_pkg(tmp_path, text="def fine():\n    return 1\n")
    code = lint_main(["--root", str(tmp_path), "src"])
    assert code == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_cli_json_report_schema(tmp_path, capsys):
    _write_pkg(tmp_path)
    report_path = tmp_path / "report.json"
    code = lint_main(
        ["--root", str(tmp_path), "src", "--json", "--output", str(report_path)]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload == json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["version"] == 1
    assert payload["counts"]["reported"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "error-taxonomy"
    assert finding["path"] == "src/repro/llm/snippet.py"
    assert finding["line"] == 3
    assert finding["severity"] == "error"


def test_cli_write_baseline_then_rerun_is_clean(tmp_path, capsys):
    snippet = _write_pkg(tmp_path)
    assert lint_main(["--root", str(tmp_path), "src", "--write-baseline"]) == 0
    assert (tmp_path / ".repro-baseline.json").is_file()
    capsys.readouterr()

    # The ratchet holds: baselined debt no longer blocks...
    assert lint_main(["--root", str(tmp_path), "src"]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but a *new* finding in the same file still fails the run.
    snippet.write_text(
        BAD_SNIPPET + '\n\ndef worse(n):\n    raise RuntimeError("x")\n',
        encoding="utf-8",
    )
    assert lint_main(["--root", str(tmp_path), "src"]) == 1
    out = capsys.readouterr().out
    assert "snippet.py:8" in out  # only the new finding is reported
    assert "snippet.py:3" not in out


def test_write_baseline_prunes_stale_entries_with_warning(tmp_path, capsys):
    # The rename blind spot: baseline debt attached to a path that no
    # longer exists would waive findings forever.  Rewriting the
    # baseline warns about and drops such entries.
    snippet = _write_pkg(tmp_path)
    assert lint_main(["--root", str(tmp_path), "src", "--write-baseline"]) == 0
    capsys.readouterr()

    # Simulate a rename: the old path's debt is now stale.
    moved = snippet.with_name("renamed.py")
    snippet.rename(moved)
    assert lint_main(["--root", str(tmp_path), "src", "--write-baseline"]) == 0
    captured = capsys.readouterr()
    assert "pruned baseline entry for src/repro/llm/snippet.py" in captured.err
    assert "renamed or deleted" in captured.err
    assert "1 stale entries pruned" in captured.out

    baseline = load_baseline(tmp_path / ".repro-baseline.json")
    assert "src/repro/llm/snippet.py" not in baseline
    assert "src/repro/llm/renamed.py" in baseline


def test_cli_missing_path_exits_2(tmp_path, capsys):
    assert lint_main(["--root", str(tmp_path), "no-such-dir"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_unknown_rule_exits_2(tmp_path, capsys):
    _write_pkg(tmp_path)
    assert lint_main(["--root", str(tmp_path), "src", "--rule", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_explicit_missing_baseline_exits_2(tmp_path, capsys):
    _write_pkg(tmp_path)
    code = lint_main(
        ["--root", str(tmp_path), "src", "--baseline", str(tmp_path / "nope.json")]
    )
    assert code == 2
    assert "baseline" in capsys.readouterr().err


def test_cli_rule_selection_limits_checkers(tmp_path, capsys):
    _write_pkg(tmp_path)
    code = lint_main(["--root", str(tmp_path), "src", "--rule", "determinism"])
    assert code == 0  # the taxonomy violation is out of selection
    capsys.readouterr()


def test_cli_list_rules_names_all_nine(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "lock-discipline",
        "leaked-resource",
        "lock-order",
        "held-call",
        "async-hygiene",
        "error-taxonomy",
        "test-network-isolation",
        "determinism",
        "swallowed-error",
    ):
        assert rule in out


# ---------------------------------------------------------------------------
# Registry and wiring


def test_registry_has_nine_rules_sorted():
    rules = [checker.rule for checker in all_checkers()]
    assert rules == sorted(rules)
    assert len(rules) == 9


def test_checkers_for_rules_rejects_unknown():
    with pytest.raises(ConfigError):
        checkers_for_rules(["not-a-rule"])


def test_rage_lint_subcommand_is_wired(tmp_path, capsys):
    _write_pkg(tmp_path)
    code = rage_main(["lint", "--root", str(tmp_path), "src"])
    assert code == 1
    assert "[error-taxonomy]" in capsys.readouterr().out


def test_analyze_paths_deduplicates_overlapping_paths(tmp_path):
    _write_pkg(tmp_path)
    result = analyze_paths(["src", "src/repro"], root=tmp_path)
    assert result.files == 1
    assert len(result.findings) == 1
