"""EvaluationPlan tests + shared-evaluator explain() guarantees."""

from collections import Counter

from repro import Rage, RageConfig, SimulatedLLM
from repro.core import ContextEvaluator, EvaluationPlan
from repro.core.context import (
    CombinationPerturbation,
    Context,
    PermutationPerturbation,
)
from repro.core.sampling import select_combinations
from repro.datasets import load_use_case
from repro.llm import ScriptedLLM
from repro.retrieval import Document


def _world(k=3):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q?", docs)
    llm = ScriptedLLM(answer_fn=lambda q, texts: f"{len(texts)} sources")
    return context, llm


class RecordingLLM:
    """Counts how often each prompt reaches the model, whatever the path."""

    def __init__(self, inner):
        self.inner = inner
        self.prompts = Counter()

    @property
    def name(self):
        return f"recording({self.inner.name})"

    def generate(self, prompt):
        self.prompts[prompt] += 1
        return self.inner.generate(prompt)

    def generate_batch(self, prompts):
        for prompt in prompts:
            self.prompts[prompt] += 1
        return self.inner.generate_batch(prompts)


def test_plan_deduplicates_and_batches():
    context, llm = _world()
    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator)
    plan.add([("d0",), ("d0", "d1"), ("d0",)])  # one duplicate
    assert plan.pending == 2
    stats = plan.execute()
    assert stats.requested == 3
    assert stats.dispatched == 2
    assert stats.saved == 1
    assert evaluator.llm_calls == 2


def test_plan_skips_memoized_orderings():
    context, llm = _world()
    evaluator = ContextEvaluator(llm, context)
    evaluator.evaluate(("d0",))
    plan = EvaluationPlan(evaluator)
    plan.add([("d0",), ("d1",)])
    assert plan.pending == 1
    stats = plan.execute()
    assert stats.dispatched == 1


def test_plan_add_perturbations_and_baselines():
    context, llm = _world()
    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator)
    plan.add_baselines()
    plan.add_perturbations(
        [
            CombinationPerturbation(kept=("d0",)),
            PermutationPerturbation(order=("d1", "d0", "d2")),
        ]
    )
    stats = plan.execute()
    assert stats.dispatched == 4  # full, empty, one combo, one perm
    assert evaluator.is_memoized(context.doc_ids())
    assert evaluator.is_memoized(())
    assert evaluator.is_memoized(("d1", "d0", "d2"))


def test_plan_execute_resets_for_reuse():
    context, llm = _world()
    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator)
    plan.add([("d0",)])
    plan.execute()
    stats = plan.execute()  # nothing pending
    assert stats.requested == 0
    assert stats.dispatched == 0
    plan.add([("d0",), ("d1",)])  # first is now memoized
    stats = plan.execute()
    assert stats.requested == 2
    assert stats.dispatched == 1


def test_plan_covers_insight_selection():
    context, llm = _world(4)
    evaluator = ContextEvaluator(llm, context)
    perturbations = select_combinations(context)
    EvaluationPlan(evaluator).add_perturbations(perturbations).execute()
    assert evaluator.memo_size == len(perturbations)


def _recording_engine(case, **kwargs):
    defaults = dict(k=case.k, cache=False)
    defaults.update(kwargs)
    llm = RecordingLLM(SimulatedLLM(knowledge=case.knowledge))
    return Rage.from_corpus(case.corpus, llm, config=RageConfig(**defaults)), llm


def test_explain_shared_evaluator_issues_no_duplicate_llm_calls():
    """The acceptance guarantee: one report, every prompt at most once."""
    case = load_use_case("big_three")
    rage, llm = _recording_engine(case)
    report = rage.explain(case.query)
    duplicates = {p: n for p, n in llm.prompts.items() if n > 1}
    assert duplicates == {}
    assert report.llm_calls == sum(llm.prompts.values())


def test_explain_strictly_fewer_llm_calls_than_serial_flow():
    """Shared memo beats per-sub-explanation evaluators on the same work."""
    case = load_use_case("big_three")
    rage, llm = _recording_engine(case)
    rage.explain(case.query)
    batched_calls = sum(llm.prompts.values())

    serial_rage, serial_llm = _recording_engine(case)
    context = serial_rage.retrieve(case.query)
    serial_rage.ask(case.query, context=context)
    serial_rage.combination_insights(case.query, context=context)
    serial_rage.permutation_insights(case.query, context=context)
    serial_rage.combination_counterfactual(
        case.query, context=context, direction="top_down"
    )
    serial_rage.combination_counterfactual(
        case.query, context=context, direction="bottom_up"
    )
    serial_rage.permutation_counterfactual(case.query, context=context)
    serial_rage.order_stability(case.query, context=context)
    serial_calls = sum(serial_llm.prompts.values())

    assert batched_calls < serial_calls


def test_explain_report_carries_stability_and_call_count():
    case = load_use_case("big_three")
    rage, _ = _recording_engine(case)
    report = rage.explain(case.query)
    assert report.stability is not None
    assert report.stability.num_permutations > 0
    assert 0.0 <= report.stability.stable_fraction <= 1.0
    assert report.llm_calls > 0


# -- staged pruning (answer-implication lattice) -----------------------------


from repro.core import AnswerLattice
from repro.core.plan import MIN_PRUNE_PENDING
from repro.core.sampling import select_permutations


def _monotone_world(k=6):
    """Answer counts how many of the first two sources are kept —
    monotone over the subset lattice (a counting model)."""
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q?", docs)

    def answer_fn(question, texts):
        return f"{sum(1 for t in ('text 0', 'text 1') if t in texts)} hits"

    return context, ScriptedLLM(answer_fn=answer_fn)


def _parity_world(k=6):
    """Answer flips with subset-size parity — maximally non-monotone."""
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q?", docs)
    return context, ScriptedLLM(
        answer_fn=lambda q, texts: "even" if len(texts) % 2 == 0 else "odd"
    )


def _full_plan(context, llm, lattice=None):
    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator, lattice=lattice)
    plan.add_baselines()
    plan.add_perturbations(select_combinations(context))
    plan.add_perturbations(select_permutations(context, sample_size=20))
    return evaluator, plan


def test_staged_execute_prunes_monotone_world():
    context, llm = _monotone_world(6)
    baseline_evaluator, baseline_plan = _full_plan(context, llm)
    baseline_stats = baseline_plan.execute()

    context2, llm2 = _monotone_world(6)
    lattice = AnswerLattice(context2)
    evaluator, plan = _full_plan(context2, llm2, lattice=lattice)
    stats = plan.execute()

    assert stats.pruned > 0
    assert stats.implied >= stats.pruned
    assert stats.requested == baseline_stats.requested
    assert stats.dispatched < baseline_stats.dispatched
    assert evaluator.llm_calls + stats.pruned == baseline_evaluator.llm_calls


def test_staged_execute_implied_answers_are_exact():
    context, llm = _monotone_world(6)
    lattice = AnswerLattice(context)
    evaluator, plan = _full_plan(context, llm, lattice=lattice)
    plan.execute()
    truth_evaluator = ContextEvaluator(_monotone_world(6)[1], context)
    for mask in range(1, 1 << 6):
        entry = lattice.known(mask)
        if entry is not None and entry.inferred:
            real = truth_evaluator.evaluate(lattice.decode(mask))
            assert entry.normalized_answer == real.normalized_answer


def test_staged_execute_gate_blocks_order_sensitive_world():
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(6)]
    context = Context.from_documents("q?", docs)
    # Order-sensitive: the first rendered source decides the answer.
    llm = ScriptedLLM(answer_fn=lambda q, texts: texts[0] if texts else "none")
    lattice = AnswerLattice(context)
    evaluator, plan = _full_plan(context, llm, lattice=lattice)
    stats = plan.execute()
    assert lattice.order_sensitive is True
    assert stats.pruned == 0
    assert stats.implied == 0
    # Everything pending was evaluated for real.
    assert evaluator.memo_size >= 2 ** 6


def test_staged_execute_probes_roll_back_non_monotone_world():
    """The parity model defeats sandwich implication; the probe round
    must catch the lie and re-evaluate everything for real."""
    context, llm = _parity_world(6)
    lattice = AnswerLattice(context, assume_order_insensitive=True)
    evaluator, plan = _full_plan(context, llm, lattice=lattice)
    stats = plan.execute()
    assert lattice.stats.conflicts > 0
    assert stats.pruned == 0
    # After rollback every combination answer is real and exact.
    for mask in range(1, 1 << 6):
        entry = lattice.known(mask)
        if entry is not None:
            assert not entry.inferred
    truth = ContextEvaluator(_parity_world(6)[1], context)
    for mask in (0b000111, 0b011110, 0b101010):
        assert (
            evaluator.evaluate(lattice.decode(mask)).normalized_answer
            == truth.evaluate(lattice.decode(mask)).normalized_answer
        )


def test_staged_execute_skips_small_plans():
    context, llm = _monotone_world(4)  # 15 combos < MIN_PRUNE_PENDING
    assert 2 ** 4 - 1 < MIN_PRUNE_PENDING
    lattice = AnswerLattice(context, assume_order_insensitive=True)
    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator, lattice=lattice)
    plan.add_perturbations(select_combinations(context))
    stats = plan.execute()
    assert stats.pruned == 0
    assert stats.dispatched == 2 ** 4 - 1


def test_staged_execute_records_plain_batches_into_lattice():
    context, llm = _monotone_world(4)
    lattice = AnswerLattice(context, assume_order_insensitive=True)
    evaluator = ContextEvaluator(llm, context)
    plan = EvaluationPlan(evaluator, lattice=lattice)
    plan.add([("d0",), ("d0", "d1")])
    plan.execute()
    assert lattice.evaluated(lattice.encode(("d0",)))
    assert lattice.evaluated(lattice.encode(("d0", "d1")))


def test_plan_stats_saved_includes_pruning():
    context, llm = _monotone_world(6)
    lattice = AnswerLattice(context)
    evaluator, plan = _full_plan(context, llm, lattice=lattice)
    stats = plan.execute()
    assert stats.saved == stats.requested - stats.dispatched
    assert stats.saved >= stats.pruned
