"""RouterLLM suites: breaker lifecycle, failover, hedging, wiring.

The two-server failover sections are hermetic: every HTTP request lands
on an in-process FakeLLMServer (the conftest network guard enforces
it), and "dead provider" means a loopback port that was bound once and
released, so connections are refused instantly.
"""

from __future__ import annotations

import asyncio

import pytest

from fakes import FakeLLMServer, Fault, simulated_answer_fn

from repro import Rage, RageConfig, RemoteLLM, RouterLLM, SimulatedLLM
from repro.app.cli import main as cli_main
from repro.app.server import encode_json, report_payload
from repro.core.engine import (
    FALLBACK_SIMULATED,
    build_model_chain,
    parse_provider_spec,
)
from repro.datasets import load_use_case
from repro.errors import (
    ConfigError,
    NoProviderAvailableError,
    TransportError,
)
from repro.llm.base import GenerationResult, TokenUsage
from repro.llm.router import BreakerState, CircuitBreaker
from repro.llm.transport import RetryPolicy, TokenBucket

NO_RETRY = RetryPolicy(max_attempts=1)


class FakeClock:
    """Injectable monotonic clock the breaker tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class EchoLLM:
    """Deterministic member: optional initial failures, optional delay."""

    def __init__(
        self,
        name: str,
        answer: str = "ok",
        fail_first: int = 0,
        delay: float = 0.0,
        offer_async: bool = True,
    ) -> None:
        self._name = name
        self.answer = answer
        self.fail_first = fail_first
        self.delay = delay
        self.calls = 0
        if not offer_async:
            self.agenerate = None  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return self._name

    def _serve(self, prompt: str) -> GenerationResult:
        self.calls += 1
        if self.calls <= self.fail_first:
            raise TransportError(f"{self._name} fault #{self.calls}")
        return GenerationResult(
            answer=self.answer, prompt=prompt, usage=TokenUsage(1, 1)
        )

    def generate(self, prompt: str) -> GenerationResult:
        result = self._serve(prompt)
        return result

    async def agenerate(self, prompt: str) -> GenerationResult:  # type: ignore[misc]
        if self.delay:
            await asyncio.sleep(self.delay)
        return self._serve(prompt)


def _dead_base_url() -> str:
    """A loopback URL nothing listens on (connections refused)."""
    with FakeLLMServer() as probe:
        url = probe.base_url
    return url


# ---------------------------------------------------------------------------
# CircuitBreaker lifecycle


def test_breaker_trips_after_exactly_n_consecutive_failures():
    breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=FakeClock())
    for _ in range(2):
        assert breaker.try_claim()
        breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.consecutive_failures == 2
    assert breaker.try_claim()
    breaker.record_failure()  # the third consecutive failure trips it
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1
    assert not breaker.try_claim()


def test_breaker_success_resets_the_consecutive_count():
    breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=FakeClock())
    breaker.try_claim()
    breaker.record_failure()
    breaker.try_claim()
    breaker.record_success()
    assert breaker.consecutive_failures == 0
    breaker.try_claim()
    breaker.record_failure()  # 1 of 2 again, not 2 of 2
    assert breaker.state is BreakerState.CLOSED


def test_breaker_half_open_grants_exactly_one_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.try_claim()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert not breaker.try_claim()  # cooldown not elapsed
    clock.advance(5.0)
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.try_claim()  # the probe
    assert not breaker.try_claim()  # probe slot is exclusive
    assert not breaker.available


def test_breaker_probe_success_recloses():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.try_claim()
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.try_claim()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.reclosures == 1
    assert breaker.consecutive_failures == 0


def test_breaker_probe_failure_reopens_for_a_fresh_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.try_claim()
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.try_claim()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    clock.advance(4.9)
    assert not breaker.try_claim()
    clock.advance(0.1)
    assert breaker.try_claim()


def test_breaker_abort_releases_the_probe_slot_without_deciding():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
    breaker.try_claim()
    breaker.record_failure()
    clock.advance(5.0)
    assert breaker.try_claim()
    breaker.abort()
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.try_claim()  # the slot is claimable again


def test_breaker_validates_parameters():
    with pytest.raises(ConfigError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ConfigError):
        CircuitBreaker(cooldown=-1.0)


# ---------------------------------------------------------------------------
# RouterLLM construction and identity


def test_router_rejects_empty_pool_and_duplicate_names():
    with pytest.raises(ConfigError):
        RouterLLM([])
    with pytest.raises(ConfigError):
        RouterLLM([EchoLLM("twin"), EchoLLM("twin")])
    with pytest.raises(ConfigError):
        RouterLLM([EchoLLM("a"), EchoLLM("b")], hedge_delay=0.0)


def test_router_cache_params_merge_every_member_identity():
    sim = SimulatedLLM()
    router = RouterLLM([EchoLLM("prim"), sim])
    params = router.cache_params
    assert [p["name"] for p in params["providers"]] == ["prim", sim.name]
    assert params["providers"][1]["params"] == dict(sim.cache_params)
    assert router.name == f"router(prim+{sim.name})"


def test_router_cache_params_identical_regardless_of_member_health():
    # The store key must not depend on which member happens to serve.
    members = lambda: [EchoLLM("prim"), EchoLLM("back")]  # noqa: E731
    healthy = RouterLLM(members())
    degraded = RouterLLM(members(), breaker_threshold=1)
    degraded_members = degraded.members
    degraded_members[0].fail_first = 10
    degraded.generate("q")  # primary fails; fallback serves
    assert healthy.cache_params == degraded.cache_params


# ---------------------------------------------------------------------------
# Sync failover


def test_sync_failover_to_next_provider():
    primary = EchoLLM("prim", fail_first=1)
    backup = EchoLLM("back", answer="served-by-backup")
    router = RouterLLM([primary, backup])
    result = router.generate("q")
    assert result.answer == "served-by-backup"
    assert router.stats.requests == 1
    assert router.stats.failovers == 1
    assert router.health["prim"].failures == 1
    assert router.health["back"].successes == 1


def test_sync_breaker_opens_and_skips_the_dead_primary():
    primary = EchoLLM("prim", fail_first=100)
    backup = EchoLLM("back")
    router = RouterLLM([primary, backup], breaker_threshold=2)
    for _ in range(5):
        assert router.generate("q").answer == "ok"
    # Exactly threshold requests reached the primary; the rest skipped.
    assert primary.calls == 2
    assert router.health["prim"].breaker.trips == 1
    assert router.health["prim"].breaker.state is BreakerState.OPEN
    assert router.stats.failovers == 5


def test_sync_half_open_probe_recovers_the_primary():
    clock = FakeClock()
    primary = EchoLLM("prim", fail_first=1)
    backup = EchoLLM("back", answer="backup")
    router = RouterLLM(
        [primary, backup], breaker_threshold=1, breaker_cooldown=5.0,
        clock=clock,
    )
    assert router.generate("q").answer == "backup"  # trip + failover
    assert router.generate("q").answer == "backup"  # skipped while open
    assert primary.calls == 1
    clock.advance(5.0)
    assert router.generate("q").answer == "ok"  # probe succeeds
    assert router.health["prim"].breaker.reclosures == 1
    assert router.health["prim"].breaker.state is BreakerState.CLOSED
    assert router.generate("q").answer == "ok"  # back to normal priority


def test_sync_exhausted_pool_names_every_failure():
    router = RouterLLM(
        [EchoLLM("prim", fail_first=9), EchoLLM("back", fail_first=9)]
    )
    with pytest.raises(NoProviderAvailableError) as excinfo:
        router.generate("q")
    assert set(excinfo.value.failures) == {"prim", "back"}
    assert "TransportError" in excinfo.value.failures["prim"]
    assert router.stats.exhausted == 1


def test_sync_non_transport_errors_propagate_unchanged():
    class BuggyLLM:
        name = "buggy"

        def generate(self, prompt):
            raise ValueError("not a health signal")

    router = RouterLLM([BuggyLLM(), EchoLLM("back")])
    with pytest.raises(ValueError):
        router.generate("q")
    # No failure recorded: the breaker only counts transport faults.
    assert router.health["buggy"].breaker.consecutive_failures == 0


# ---------------------------------------------------------------------------
# Async failover and hedging


def test_async_failover_matches_sync():
    primary = EchoLLM("prim", fail_first=1)
    backup = EchoLLM("back", answer="async-backup")
    router = RouterLLM([primary, backup])
    result = asyncio.run(router.agenerate("q"))
    assert result.answer == "async-backup"
    assert router.stats.failovers == 1


def test_async_walk_uses_to_thread_for_sync_only_members():
    sync_only = EchoLLM("sync-only", offer_async=False)
    router = RouterLLM([sync_only])
    result = asyncio.run(router.agenerate("q"))
    assert result.answer == "ok"
    assert sync_only.calls == 1


def test_hedge_fires_and_backup_wins_under_tail_latency():
    primary = EchoLLM("prim", delay=0.5)
    backup = EchoLLM("back", answer="hedged", delay=0.0)
    router = RouterLLM([primary, backup], hedge=True, hedge_delay=0.02)
    result = asyncio.run(router.agenerate("q"))
    assert result.answer == "hedged"
    assert router.stats.hedges_fired == 1
    assert router.stats.hedges_won == 1
    assert router.health["back"].hedges_fired == 1
    assert router.health["back"].hedges_won == 1
    # The cancelled primary said nothing about its health.
    assert router.health["prim"].breaker.state is BreakerState.CLOSED
    assert router.health["prim"].failures == 0


def test_hedge_primary_wins_when_fast_enough():
    primary = EchoLLM("prim", answer="primary", delay=0.0)
    backup = EchoLLM("back", answer="hedged")
    router = RouterLLM([primary, backup], hedge=True, hedge_delay=0.2)
    result = asyncio.run(router.agenerate("q"))
    assert result.answer == "primary"
    assert router.stats.hedges_fired == 0
    assert backup.calls == 0


def test_hedge_falls_back_to_failover_with_one_available_member():
    router = RouterLLM([EchoLLM("only")], hedge=True, hedge_delay=0.01)
    assert asyncio.run(router.agenerate("q")).answer == "ok"
    assert router.stats.hedges_fired == 0


def test_hedge_without_delay_or_p95_history_does_not_fire():
    primary = EchoLLM("prim", delay=0.05)
    backup = EchoLLM("back")
    router = RouterLLM([primary, backup], hedge=True)  # delay=None, no p95
    assert asyncio.run(router.agenerate("q")).answer == "ok"
    assert router.stats.hedges_fired == 0


def test_hedge_uses_observed_p95_once_history_exists():
    primary = EchoLLM("prim", delay=0.0)
    backup = EchoLLM("back", answer="hedged")
    router = RouterLLM([primary, backup], hedge=True)

    async def scenario():
        for _ in range(3):  # build a (tiny) latency window on the primary
            await router.agenerate("warm")
        primary.delay = 0.5  # tail-latency burst, way past its p95
        return await router.agenerate("q")

    result = asyncio.run(scenario())
    assert result.answer == "hedged"
    assert router.stats.hedges_fired == 1


def test_cancelled_hedge_loser_refunds_its_rate_limit_reservation():
    bucket = TokenBucket(rate=0.1, burst=1)

    class BucketedSlowLLM:
        name = "bucketed"

        async def agenerate(self, prompt):
            await bucket.aacquire()
            try:
                return GenerationResult(answer="slow", prompt=prompt)
            except asyncio.CancelledError:
                bucket.cancel()
                raise

    # Drain the bucket so the primary's aacquire() must sleep out a
    # ~10s wait — the hedge then cancels it mid-wait, exercising
    # aacquire's cancellation-refund path.
    assert bucket.reserve() == 0.0
    router = RouterLLM(
        [BucketedSlowLLM(), EchoLLM("back", answer="hedged")],
        hedge=True,
        hedge_delay=0.02,
    )
    result = asyncio.run(router.agenerate("q"))
    assert result.answer == "hedged"
    assert router.stats.hedges_won == 1
    # The loser's reservation came back: refund our own drain and the
    # bucket admits immediately again (without the refund this would
    # report a ~10s wait).
    bucket.cancel()
    admitted, wait = bucket.try_acquire()
    assert admitted and wait == 0.0


def test_hedge_both_racers_failing_falls_back_to_the_pool():
    primary = EchoLLM("prim", fail_first=9, delay=0.05)
    backup = EchoLLM("back", fail_first=9)
    last = EchoLLM("last", answer="rescued")
    router = RouterLLM([primary, backup, last], hedge=True, hedge_delay=0.01)
    result = asyncio.run(router.agenerate("q"))
    assert result.answer == "rescued"
    assert router.stats.failovers == 1


# ---------------------------------------------------------------------------
# Hermetic two-server failover (RemoteLLM members)


def _remote(model_id: str, base_url: str) -> RemoteLLM:
    return RemoteLLM("openai", model_id, base_url=base_url, retry=NO_RETRY)


def _case_router(case, primary_url, backup_url, **kwargs) -> RouterLLM:
    return RouterLLM(
        [_remote("fake-a", primary_url), _remote("fake-b", backup_url)],
        **kwargs,
    )


def _report_bytes(case, llm) -> bytes:
    rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(k=case.k))
    return encode_json(report_payload(rage.explain(case.query)))


def test_two_server_failover_report_bytes_are_identical():
    case = load_use_case("big_three")
    answers = simulated_answer_fn(case.knowledge)
    with FakeLLMServer(answer_fn=answers) as server_a:
        with FakeLLMServer(answer_fn=answers) as server_b:
            healthy = _report_bytes(
                case,
                _case_router(case, server_a.base_url, server_b.base_url),
            )
            healthy_served_by_a = server_a.request_count
            assert healthy_served_by_a > 0
            assert server_b.request_count == 0

            degraded = _report_bytes(
                case,
                _case_router(case, _dead_base_url(), server_b.base_url),
            )
            # Every request failed over to server B...
            assert server_b.request_count > 0
    # ...and the report the client saw is byte-for-byte the same.
    assert degraded == healthy


def test_two_server_breaker_trips_after_exactly_n_failures():
    with FakeLLMServer() as server_b:
        router = _case_router(
            None, _dead_base_url(), server_b.base_url, breaker_threshold=3
        )
        for _ in range(6):
            router.generate("q")
        primary = router.health["remote:openai/fake-a"]
        assert primary.calls == 3  # then the open breaker skips it
        assert primary.breaker.trips == 1
        assert router.stats.failovers == 6


def test_two_server_half_open_probe_recovers_after_faults():
    clock = FakeClock()
    with FakeLLMServer() as server_a:
        with FakeLLMServer() as server_b:
            server_a.add_faults(Fault(status=500), Fault(status=500))
            router = _case_router(
                None,
                server_a.base_url,
                server_b.base_url,
                breaker_threshold=2,
                breaker_cooldown=5.0,
                clock=clock,
            )
            router.generate("q1")  # A 500s (1/2), B serves
            router.generate("q2")  # A 500s (2/2) -> trip, B serves
            primary = router.health["remote:openai/fake-a"]
            assert primary.breaker.state is BreakerState.OPEN
            router.generate("q3")  # open: A skipped without a request
            assert server_a.request_count == 2
            clock.advance(5.0)
            router.generate("q4")  # half-open probe; A is healthy again
            assert primary.breaker.state is BreakerState.CLOSED
            assert primary.breaker.reclosures == 1
            assert server_a.request_count == 3
            # Recovered: the primary serves at full priority again.
            router.generate("q5")
            assert server_a.request_count == 4
            assert server_b.request_count == 3


def test_two_server_connection_reset_and_slow_drip_fail_over():
    with FakeLLMServer() as server_a:
        with FakeLLMServer() as server_b:
            server_a.add_faults(
                Fault(kind="connection-reset"),
                Fault(kind="slow-drip", delay=0.5),
            )
            router = RouterLLM(
                [
                    RemoteLLM(
                        "openai", "fake-a", base_url=server_a.base_url,
                        timeout=0.1, retry=NO_RETRY,
                    ),
                    _remote("fake-b", server_b.base_url),
                ]
            )
            for _ in range(2):
                assert router.generate("q").answer.startswith("echo:")
            assert router.health["remote:openai/fake-a"].failures == 2
            assert server_b.request_count == 2


# ---------------------------------------------------------------------------
# Engine and CLI wiring


def test_parse_provider_spec_shapes():
    assert parse_provider_spec(FALLBACK_SIMULATED) == ("fallback", None)
    assert parse_provider_spec("remote:openai:gpt") == (
        "remote", ("openai", "gpt", None),
    )
    assert parse_provider_spec("remote:openai:gpt@http://127.0.0.1:1") == (
        "remote", ("openai", "gpt", "http://127.0.0.1:1"),
    )
    with pytest.raises(ConfigError):
        parse_provider_spec("fallback:other")
    with pytest.raises(ConfigError):
        parse_provider_spec("remote:openai:gpt@ftp://nope")
    with pytest.raises(ConfigError):
        parse_provider_spec("local:thing")


def test_build_model_chain_wires_specs_and_defaults():
    config = RageConfig(
        providers=(
            "remote:openai:a@http://127.0.0.1:1",
            "remote:anthropic:b",
            FALLBACK_SIMULATED,
        ),
        base_url="http://127.0.0.1:2",
        breaker_threshold=7,
        hedge=True,
        hedge_delay=0.25,
    )
    chain = build_model_chain(config)
    assert isinstance(chain, RouterLLM)
    members = chain.members
    assert members[0].base_url == "http://127.0.0.1:1"  # per-spec pin
    assert members[1].base_url == "http://127.0.0.1:2"  # config default
    assert isinstance(members[2], SimulatedLLM)
    assert chain.hedge and chain.hedge_delay == 0.25
    assert chain.health[members[0].name].breaker.threshold == 7


def test_build_model_chain_without_providers_builds_single_remote():
    config = RageConfig(model="remote:openai:gpt")
    assert isinstance(build_model_chain(config), RemoteLLM)


def test_rage_engine_builds_the_chain_from_config(tmp_path):
    case = load_use_case("big_three")
    config = RageConfig(k=case.k, providers=(FALLBACK_SIMULATED,))
    rage = Rage.from_corpus(case.corpus, config=config)
    # A pool of one simulated fallback still answers the demo question.
    assert rage.ask(case.query).answer == case.expected_answer


def test_cli_provider_pool_falls_back_to_simulated(capsys):
    dead = _dead_base_url()
    code = cli_main(
        [
            "ask",
            "--use-case", "big_three",
            "--provider", f"remote:openai:fake-a@{dead}",
            "--provider", FALLBACK_SIMULATED,
            "--retries", "0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Roger Federer" in out


def test_cli_rejects_model_and_provider_together(capsys):
    code = cli_main(
        [
            "ask",
            "--use-case", "big_three",
            "--model", "remote:openai:gpt",
            "--provider", FALLBACK_SIMULATED,
        ]
    )
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_report_stats_prints_router_attribution(capsys):
    code = cli_main(
        [
            "report",
            "--use-case", "big_three",
            "--provider", FALLBACK_SIMULATED,
            "--stats",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Router: 1 providers" in out
    assert "simulated-llm" in out
