"""RageSession flow tests."""

import pytest

from repro.app import RageSession
from repro.core import SearchDirection
from repro.datasets import load_use_case
from repro.errors import ConfigError


@pytest.fixture()
def session():
    return RageSession.for_use_case("big_three")


def test_for_use_case_poses_canonical_query(session):
    assert session.query is not None
    assert session.answer == "Roger Federer"
    assert session.context is not None
    assert session.context.k == 4


def test_for_use_case_accepts_object():
    case = load_use_case("us_open")
    session = RageSession.for_use_case(case)
    assert session.answer == "Coco Gauff"


def test_must_pose_before_explaining():
    from repro import Rage, SimulatedLLM

    case = load_use_case("big_three")
    bare = RageSession(Rage.from_corpus(case.corpus, SimulatedLLM()))
    with pytest.raises(ConfigError):
        bare.combination_insights()


def test_insights(session):
    insights = session.combination_insights()
    assert insights.total == 15
    perm = session.permutation_insights(sample_size=10)
    assert perm.total == 10


def test_counterfactuals(session):
    top_down = session.combination_counterfactual()
    assert top_down.found
    bottom_up = session.combination_counterfactual(direction=SearchDirection.BOTTOM_UP)
    assert bottom_up.found
    perm = session.permutation_counterfactual()
    assert perm.found


def test_optimal(session):
    placements = session.optimal_permutations(s=2)
    assert len(placements) == 2


def test_report(session):
    report = session.report()
    assert report.answer == "Roger Federer"
    assert report.top_down.found


def test_repose_changes_context(session):
    original_ids = session.context.doc_ids()
    session.pose("Who is the best tennis player by head to head record?")
    assert session.context is not None
    assert session.query != load_use_case("big_three").query or True
    assert isinstance(session.answer, str)
    assert session.context.doc_ids() != ()
    assert original_ids is not None
