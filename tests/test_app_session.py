"""RageSession flow tests."""

import pytest

from repro.app import RageSession
from repro.core import SearchDirection
from repro.datasets import load_use_case
from repro.errors import ConfigError


@pytest.fixture()
def session():
    return RageSession.for_use_case("big_three")


def test_for_use_case_poses_canonical_query(session):
    assert session.query is not None
    assert session.answer == "Roger Federer"
    assert session.context is not None
    assert session.context.k == 4


def test_for_use_case_accepts_object():
    case = load_use_case("us_open")
    session = RageSession.for_use_case(case)
    assert session.answer == "Coco Gauff"


def test_must_pose_before_explaining():
    from repro import Rage, SimulatedLLM

    case = load_use_case("big_three")
    bare = RageSession(Rage.from_corpus(case.corpus, SimulatedLLM()))
    with pytest.raises(ConfigError):
        bare.combination_insights()


def test_insights(session):
    insights = session.combination_insights()
    assert insights.total == 15
    perm = session.permutation_insights(sample_size=10)
    assert perm.total == 10


def test_counterfactuals(session):
    top_down = session.combination_counterfactual()
    assert top_down.found
    bottom_up = session.combination_counterfactual(direction=SearchDirection.BOTTOM_UP)
    assert bottom_up.found
    perm = session.permutation_counterfactual()
    assert perm.found


def test_optimal(session):
    placements = session.optimal_permutations(s=2)
    assert len(placements) == 2


def test_report(session):
    report = session.report()
    assert report.answer == "Roger Federer"
    assert report.top_down.found


def test_failed_ask_leaves_session_state_intact(session):
    """Regression: a failing pose() must be all-or-nothing.

    Before the fix, pose() wrote `query` (and `context`) before asking,
    so a failed ask left a new question paired with the previous
    answer.
    """
    before = session.state()

    def exploding_ask(query, context=None, evaluator=None):
        raise RuntimeError("model fell over")

    session.rage.ask = exploding_ask
    with pytest.raises(RuntimeError):
        session.pose("Who won the most grand slams?")
    assert session.state() == before


def test_interleaved_poses_never_mix_state(session):
    """Regression: two interleaved poses on one session must each
    commit a consistent (query, context, answer) triple.

    The schedule below reproduces the serving-layer race: thread A
    starts posing query A, thread B completes a full pose of query B
    in the middle, then A finishes.  With the old field-by-field
    writes the final state was query B paired with query A's context
    and answer; atomic assignment leaves whole-triple A (the last
    writer) in place.
    """
    import threading

    query_a = session.query
    query_b = "Who is the best tennis player by head to head record?"
    rage = session.rage
    real_retrieve = rage.retrieve
    a_entered = threading.Event()
    b_done = threading.Event()

    def gated_retrieve(query, k=None):
        if query == query_a:
            a_entered.set()
            assert b_done.wait(timeout=10.0)
        return real_retrieve(query, k=k)

    rage.retrieve = gated_retrieve
    thread_a = threading.Thread(target=session.pose, args=(query_a,))
    thread_a.start()
    assert a_entered.wait(timeout=10.0)
    session.pose(query_b)  # completes while A is mid-pose
    b_done.set()
    thread_a.join(timeout=10.0)
    assert not thread_a.is_alive()

    rage.retrieve = real_retrieve
    query, context, answer = session.state()
    # Whichever pose committed last, the triple must be internally
    # consistent: the context is the query's own retrieval and the
    # answer is the engine's answer for exactly that pair.
    assert query in (query_a, query_b)
    assert context is not None
    assert context.doc_ids() == rage.retrieve(query).doc_ids()
    assert answer == rage.ask(query, context=context).answer


def test_state_snapshot_is_consistent_under_hammering(session):
    """Concurrent poses + readers: every snapshot is a committed triple."""
    import threading

    queries = {
        session.query: session.answer,
        "Who is the best tennis player by head to head record?": None,
    }
    rage = session.rage
    expected = {}
    for query in queries:
        context = rage.retrieve(query)
        expected[query] = (
            context.doc_ids(),
            rage.ask(query, context=context).answer,
        )
    errors = []

    def poser(query):
        for _ in range(10):
            session.pose(query)

    def reader():
        for _ in range(200):
            query, context, answer = session.state()
            if query is None:
                continue
            want_ids, want_answer = expected[query]
            if context.doc_ids() != want_ids or answer != want_answer:
                errors.append((query, context.doc_ids(), answer))

    threads = [threading.Thread(target=poser, args=(q,)) for q in queries]
    threads.append(threading.Thread(target=reader))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors


def test_repose_changes_context(session):
    original_ids = session.context.doc_ids()
    session.pose("Who is the best tennis player by head to head record?")
    assert session.context is not None
    assert session.query != load_use_case("big_three").query or True
    assert isinstance(session.answer, str)
    assert session.context.doc_ids() != ()
    assert original_ids is not None
