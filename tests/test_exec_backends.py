"""Execution-backend tests: strategies, factory, and the wiring through
ContextEvaluator and the engine."""

import asyncio
import threading

import pytest

from repro import Rage, RageConfig, SimulatedLLM
from repro.core.evaluate import ContextEvaluator
from repro.errors import ConfigError
from repro.exec import (
    DEFAULT_THREAD_WORKERS,
    AsyncioBackend,
    ExecutionBackend,
    SerialBackend,
    ThreadedBackend,
    make_backend,
)
from repro.llm import CachingLLM, GenerationResult, PromptBuilder

BUILDER = PromptBuilder()


def _prompts(n):
    return [
        BUILDER.build("Who won the race?", [f"Runner {i} won the race in 201{i}."])
        for i in range(n)
    ]


class Instrumented:
    """Sync+async per-prompt model recording threads and concurrency."""

    name = "instrumented"

    def __init__(self):
        self.calls = 0
        self.threads = set()
        self.inflight = 0
        self.max_inflight = 0
        self._lock = threading.Lock()

    def _answer(self, prompt):
        return GenerationResult(answer=f"len-{len(prompt) % 5}", prompt=prompt)

    def generate(self, prompt):
        with self._lock:
            self.calls += 1
            self.threads.add(threading.get_ident())
            self.inflight += 1
            self.max_inflight = max(self.max_inflight, self.inflight)
        try:
            return self._answer(prompt)
        finally:
            with self._lock:
                self.inflight -= 1

    async def agenerate(self, prompt):
        with self._lock:
            self.calls += 1
            self.inflight += 1
            self.max_inflight = max(self.max_inflight, self.inflight)
        await asyncio.sleep(0.002)
        with self._lock:
            self.inflight -= 1
        return self._answer(prompt)


class NativeBatch(Instrumented):
    name = "native-batch"

    def __init__(self):
        super().__init__()
        self.batches = 0

    def generate_batch(self, prompts):
        self.batches += 1
        self.calls += len(prompts)
        return [self._answer(p) for p in prompts]


# -- the factory -------------------------------------------------------------


def test_make_backend_specs():
    assert isinstance(make_backend("serial"), SerialBackend)
    threaded = make_backend("threaded:5")
    assert isinstance(threaded, ThreadedBackend) and threaded.max_workers == 5
    assert make_backend("threaded").max_workers == DEFAULT_THREAD_WORKERS
    assert make_backend("threaded", batch_workers=3).max_workers == 3
    unbounded = make_backend("asyncio")
    assert isinstance(unbounded, AsyncioBackend) and unbounded.max_inflight is None
    assert make_backend("asyncio:16").max_inflight == 16
    assert make_backend(" serial ").name == "serial"


def test_make_backend_default_resolution():
    assert isinstance(make_backend(None), SerialBackend)
    legacy = make_backend(None, batch_workers=4)
    assert isinstance(legacy, ThreadedBackend) and legacy.max_workers == 4
    assert isinstance(make_backend(None, batch_workers=1), SerialBackend)


@pytest.mark.parametrize(
    "spec", ["", "gpu", "serial:2", "threaded:x", "asyncio:", "asyncio:0", "threaded:0"]
)
def test_make_backend_rejects_bad_specs(spec):
    with pytest.raises(ConfigError):
        make_backend(spec)


def test_backend_names_and_capacity():
    assert SerialBackend().name == "serial" and SerialBackend().capacity == 1
    assert ThreadedBackend(6).name == "threaded:6" and ThreadedBackend(6).capacity == 6
    assert AsyncioBackend().name == "asyncio" and AsyncioBackend().capacity is None
    assert AsyncioBackend(9).name == "asyncio:9" and AsyncioBackend(9).capacity == 9


# -- strategy behavior -------------------------------------------------------


def test_serial_backend_is_strictly_sequential():
    model = Instrumented()
    results = SerialBackend().run(model, _prompts(5))
    assert len(results) == 5
    assert model.max_inflight == 1
    assert model.threads == {threading.get_ident()}


def test_serial_backend_uses_native_batch():
    model = NativeBatch()
    SerialBackend().run(model, _prompts(5))
    assert model.batches == 1


def test_threaded_backend_spreads_over_pool():
    barrier = threading.Barrier(4, timeout=10)

    class Rendezvous(Instrumented):
        """Only passes if 4 generate() calls are truly concurrent."""

        def generate(self, prompt):
            barrier.wait()
            return super().generate(prompt)

    model = Rendezvous()
    results = ThreadedBackend(4).run(model, _prompts(8))
    assert len(results) == 8
    assert model.calls == 8
    assert len(model.threads) == 4


def test_threaded_backend_prefers_native_batch():
    model = NativeBatch()
    ThreadedBackend(4).run(model, _prompts(8))
    assert model.batches == 1
    assert not model.threads  # no per-prompt generate() calls at all


def test_asyncio_backend_overlaps_and_bounds_inflight():
    model = Instrumented()
    results = AsyncioBackend().run(model, _prompts(6))
    assert len(results) == 6
    assert model.max_inflight == 6
    bounded = Instrumented()
    AsyncioBackend(max_inflight=2).run(bounded, _prompts(6))
    assert 1 <= bounded.max_inflight <= 2


def test_asyncio_backend_arun_awaits_on_callers_loop():
    model = Instrumented()

    async def drive():
        return await AsyncioBackend().arun(model, _prompts(4))

    assert len(asyncio.run(drive())) == 4


def test_base_backend_run_is_abstract():
    with pytest.raises(NotImplementedError):
        ExecutionBackend().run(Instrumented(), _prompts(1))


def test_backends_produce_identical_results():
    prompts = _prompts(7)
    outputs = []
    for backend in (SerialBackend(), ThreadedBackend(3), AsyncioBackend(4)):
        outputs.append([r.answer for r in backend.run(Instrumented(), prompts)])
    assert outputs[0] == outputs[1] == outputs[2]


# -- evaluator and engine wiring ---------------------------------------------


def test_evaluator_submits_through_backend(big_three_engine, big_three):
    context = big_three_engine.retrieve(big_three.query)
    model = NativeBatch()
    backend_used = []

    class Spy(SerialBackend):
        def run(self, llm, prompts):
            backend_used.append(len(prompts))
            return super().run(llm, prompts)

    evaluator = ContextEvaluator(model, context, backend=Spy())
    ids = context.doc_ids()
    evaluator.evaluate_many([ids, ids[:2], ids[:1]])
    assert backend_used == [3]
    # Memo hits never reach the backend.
    evaluator.evaluate_many([ids, ids[:2]])
    assert backend_used == [3]


def test_evaluator_default_backend_matches_batch_workers(big_three_engine, big_three):
    context = big_three_engine.retrieve(big_three.query)
    plain = ContextEvaluator(NativeBatch(), context)
    assert isinstance(plain.backend, SerialBackend)
    pooled = ContextEvaluator(NativeBatch(), context, batch_workers=4)
    assert isinstance(pooled.backend, ThreadedBackend)
    assert pooled.backend.max_workers == 4


def test_engine_builds_backend_from_config(big_three):
    rage = Rage.from_corpus(
        big_three.corpus,
        SimulatedLLM(knowledge=big_three.knowledge),
        config=RageConfig(k=big_three.k, backend="asyncio:7"),
    )
    assert isinstance(rage.backend, AsyncioBackend)
    assert rage.backend.max_inflight == 7
    assert isinstance(rage.llm, CachingLLM)
    assert rage.llm.max_inflight == 7  # capacity survives the cache boundary


def test_engine_threaded_backend_reaches_cache_workers(big_three):
    rage = Rage.from_corpus(
        big_three.corpus,
        SimulatedLLM(knowledge=big_three.knowledge),
        config=RageConfig(k=big_three.k, backend="threaded:5"),
    )
    assert rage.llm.batch_workers == 5
    # An explicit batch_workers wins over the backend width.
    rage = Rage.from_corpus(
        big_three.corpus,
        SimulatedLLM(knowledge=big_three.knowledge),
        config=RageConfig(k=big_three.k, backend="threaded:5", batch_workers=2),
    )
    assert rage.llm.batch_workers == 2


def test_config_rejects_bad_backend_spec():
    with pytest.raises(ConfigError):
        RageConfig(backend="warp-drive")


def test_config_cache_dir_requires_cache():
    with pytest.raises(ConfigError):
        RageConfig(cache=False, cache_dir="/tmp/x")
    with pytest.raises(ConfigError):
        RageConfig(cache_max_bytes=0)


def test_explain_identical_across_backends(big_three):
    reports = {}
    for spec in ("serial", "threaded:4", "asyncio:8"):
        rage = Rage.from_corpus(
            big_three.corpus,
            SimulatedLLM(knowledge=big_three.knowledge),
            config=RageConfig(k=big_three.k, backend=spec),
        )
        report = rage.explain(big_three.query)
        reports[spec] = (
            report.answer,
            report.top_down.counterfactual,
            report.bottom_up.counterfactual,
            report.llm_calls,
            [(s.answer, s.count) for s in report.combination_insights.pie()],
        )
    assert reports["serial"] == reports["threaded:4"] == reports["asyncio:8"]


def test_engine_disk_store_warm_run_hits(big_three, tmp_path):
    config = RageConfig(k=big_three.k, cache_dir=str(tmp_path / "store"))
    cold = Rage.from_corpus(
        big_three.corpus, SimulatedLLM(knowledge=big_three.knowledge), config=config
    )
    answer = cold.ask(big_three.query).answer
    assert cold.store.stats.writes > 0

    class Exploding(SimulatedLLM):
        def generate(self, prompt):  # pragma: no cover - must not be reached
            raise AssertionError("warm run must not touch the model")

        def generate_batch(self, prompts):  # pragma: no cover
            raise AssertionError("warm run must not touch the model")

    warm = Rage.from_corpus(
        big_three.corpus, Exploding(knowledge=big_three.knowledge), config=config
    )
    assert warm.ask(big_three.query).answer == answer
    assert warm.llm.stats.disk_hits > 0


def test_serial_backend_stays_serial_through_cache(big_three):
    """SerialBackend's capacity=1 must bound an async-capable *inner*
    model behind the engine's cache, not just the outer dispatch."""
    inner = Instrumented()
    rage = Rage.from_corpus(
        big_three.corpus, inner, config=RageConfig(k=big_three.k, backend="serial")
    )
    assert rage.llm.max_inflight == 1
    results = rage.backend.run(rage.llm, _prompts(6))
    assert len(results) == 6
    assert inner.max_inflight == 1


def test_asyncio_capacity_survives_cache_boundary(big_three):
    inner = Instrumented()
    rage = Rage.from_corpus(
        big_three.corpus, inner, config=RageConfig(k=big_three.k, backend="asyncio:3")
    )
    rage.backend.run(rage.llm, _prompts(9))
    assert 1 <= inner.max_inflight <= 3


def test_asyncio_backend_threads_sync_only_models():
    """asyncio:N on a model with only generate() must still deliver
    N-way concurrency (thread pool), not a silent sequential loop."""
    barrier = threading.Barrier(4, timeout=10)

    class SyncOnly:
        name = "sync-only"

        def __init__(self):
            self.threads = set()
            self._lock = threading.Lock()

        def generate(self, prompt):
            barrier.wait()
            with self._lock:
                self.threads.add(threading.get_ident())
            return GenerationResult(answer="s", prompt=prompt)

    model = SyncOnly()
    results = AsyncioBackend(max_inflight=4).run(model, _prompts(8))
    assert len(results) == 8
    assert len(model.threads) == 4


# ---------------------------------------------------------------------------
# BackendStats: submission accounting for the serving layer's /metrics


def test_backend_stats_count_batches_and_prompts():
    backend = SerialBackend()
    model = Instrumented()
    backend.run(model, _prompts(4))
    backend.run(model, _prompts(2))
    assert backend.stats.batches == 2
    assert backend.stats.prompts == 6
    assert backend.stats.active == 0
    assert backend.stats.max_active == 1


def test_backend_stats_track_overlapping_submitters():
    """max_active > 1 exactly when concurrent callers (server request
    threads) overlap on one shared backend."""
    import time

    backend = ThreadedBackend(2)

    class Slow:
        name = "slow"

        def generate(self, prompt):
            time.sleep(0.05)
            return GenerationResult(answer="ok", prompt=prompt)

    barrier = threading.Barrier(2)

    def submit():
        barrier.wait(timeout=5.0)
        backend.run(Slow(), _prompts(2))

    threads = [threading.Thread(target=submit) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
    assert backend.stats.batches == 2
    assert backend.stats.max_active == 2
    assert backend.stats.active == 0


def test_backend_stats_cover_async_entry_point():
    backend = AsyncioBackend(max_inflight=4)
    model = Instrumented()

    async def drive():
        return await backend.arun(model, _prompts(3))

    results = asyncio.run(drive())
    assert len(results) == 3
    assert backend.stats.batches == 1
    assert backend.stats.prompts == 3
    assert backend.stats.active == 0
