"""Property-based tests for the extension modules (inversions, greedy,
dense retrieval, metrics)."""

import itertools
import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics import kendall_tau, permutations_by_inversions
from repro.core import (
    Context,
    ContextEvaluator,
    greedy_combination_counterfactual,
)
from repro.core.context import CombinationPerturbation
from repro.llm import ScriptedLLM
from repro.retrieval import (
    HashedEmbedder,
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.retrieval.document import Document
from repro.textproc import normalize_answer


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=6, deadline=None)
def test_lazy_generation_matches_sorted_enumeration(k):
    """The lazy stream yields the same multiset per inversion level as
    sorting all k! permutations by tau."""
    items = list(range(k))
    lazy = list(permutations_by_inversions(items))
    explicit = sorted(
        itertools.permutations(items),
        key=lambda perm: -kendall_tau(items, list(perm)),
    )
    assert len(lazy) == len(explicit)
    by_level_lazy: dict = {}
    for order, count in lazy:
        by_level_lazy.setdefault(count, set()).add(order)
    for order in explicit:
        tau = kendall_tau(items, list(order))
        matching_levels = [
            level
            for level, orders in by_level_lazy.items()
            if order in orders
        ]
        assert len(matching_levels) == 1


@st.composite
def flip_worlds(draw):
    """A context plus a monotone answer function with a known minimal
    flipping set."""
    k = draw(st.integers(min_value=2, max_value=7))
    core_size = draw(st.integers(min_value=1, max_value=k))
    core = set(draw(st.permutations(list(range(k))))[:core_size])
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("question?", docs)
    core_texts = {f"text {i}" for i in core}

    def answers(question, texts):
        # flips exactly when every core source has been removed
        return "flipped" if not (core_texts & set(texts)) else "base"

    return context, answers, {f"d{i}" for i in core}


@given(flip_worlds())
@settings(max_examples=40, deadline=None)
def test_greedy_finds_exact_core_on_monotone_worlds(world):
    """For monotone flip functions the greedy shrink recovers the exact
    minimal core (here uniqueness makes minimal = minimum)."""
    context, answers, core = world
    evaluator = ContextEvaluator(ScriptedLLM(answer_fn=answers), context)
    scores = {doc_id: 1.0 for doc_id in context.doc_ids()}
    result = greedy_combination_counterfactual(evaluator, scores, max_evaluations=500)
    assert result.found
    assert set(result.counterfactual.changed_sources) == core


@given(flip_worlds())
@settings(max_examples=25, deadline=None)
def test_greedy_counterfactual_is_minimal(world):
    """Dropping any member of the greedy set must break the flip."""
    context, answers, _ = world
    evaluator = ContextEvaluator(ScriptedLLM(answer_fn=answers), context)
    scores = {doc_id: 1.0 for doc_id in context.doc_ids()}
    result = greedy_combination_counterfactual(evaluator, scores, max_evaluations=500)
    assert result.found
    cf = result.counterfactual
    flipped = normalize_answer(cf.new_answer)
    for doc_id in cf.changed_sources:
        subset = [d for d in cf.changed_sources if d != doc_id]
        perturbation = CombinationPerturbation.from_removal(context, subset)
        evaluation = evaluator.evaluate(perturbation.apply(context))
        assert evaluation.normalized_answer != flipped


word = st.text(alphabet="abcdefghij", min_size=1, max_size=6)


@given(st.lists(word, min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_embedder_unit_norm_or_zero(words):
    embedder = HashedEmbedder(dimensions=64)
    vector = embedder.embed(" ".join(words))
    norm = float(np.linalg.norm(vector))
    assert norm == 0.0 or abs(norm - 1.0) < 1e-9


@given(st.lists(word, min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_embedder_self_similarity_maximal(words):
    """cos(x, x) = 1 >= cos(x, y) for any other normalized y."""
    embedder = HashedEmbedder(dimensions=64)
    text = " ".join(words)
    x = embedder.embed(text)
    if float(np.linalg.norm(x)) == 0.0:
        return
    y = embedder.embed("zz qq ww unrelated words entirely")
    assert float(x @ x) >= float(x @ y) - 1e-9


@st.composite
def rankings(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    ranking = [f"d{i}" for i in range(n)]
    rng = random.Random(draw(st.integers(0, 10_000)))
    rng.shuffle(ranking)
    relevant = set(rng.sample(ranking, draw(st.integers(1, n))))
    k = draw(st.integers(1, n))
    return ranking, relevant, k


@given(rankings())
@settings(max_examples=80, deadline=None)
def test_metric_bounds_and_relations(case):
    ranking, relevant, k = case
    p = precision_at_k(ranking, relevant, k)
    r = recall_at_k(ranking, relevant, k)
    ap = average_precision(ranking, relevant)
    ndcg = ndcg_at_k(ranking, relevant, k)
    for value in (p, r, ap, ndcg):
        assert 0.0 <= value <= 1.0
    # counting identity: p * k == r * |relevant| == hits in top-k
    hits = sum(1 for doc_id in ranking[:k] if doc_id in relevant)
    assert p * k == hits
    assert abs(r * len(relevant) - hits) < 1e-9
    # everything relevant and retrieved: all metrics maximal at k = n
    if relevant == set(ranking):
        assert recall_at_k(ranking, relevant, len(ranking)) == 1.0
        assert average_precision(ranking, relevant) == 1.0


@given(rankings())
@settings(max_examples=50, deadline=None)
def test_recall_monotone_in_k(case):
    ranking, relevant, _ = case
    values = [recall_at_k(ranking, relevant, k) for k in range(1, len(ranking) + 1)]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    assert values[-1] == 1.0
