"""Perturbation selection tests."""

import pytest

from repro.core import select_combinations, select_permutations
from repro.core.context import Context
from repro.errors import ConfigError
from repro.retrieval import Document


def _context(k):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    return Context.from_documents("q", docs)


def test_select_all_combinations():
    context = _context(4)
    perturbations = select_combinations(context)
    assert len(perturbations) == 2**4 - 1
    for p in perturbations:
        p.validate(context)


def test_select_combinations_include_flags():
    context = _context(3)
    with_empty = select_combinations(context, include_empty=True)
    assert any(p.kept == () for p in with_empty)
    without_full = select_combinations(context, include_full=False)
    assert all(p.kept != context.doc_ids() for p in without_full)


def test_select_combinations_sampled():
    context = _context(10)
    perturbations = select_combinations(context, sample_size=25, seed=1)
    assert len(perturbations) == 25
    assert len({p.kept for p in perturbations}) == 25
    for p in perturbations:
        p.validate(context)


def test_select_combinations_sample_deterministic():
    context = _context(8)
    a = select_combinations(context, sample_size=10, seed=5)
    b = select_combinations(context, sample_size=10, seed=5)
    assert [p.kept for p in a] == [p.kept for p in b]
    c = select_combinations(context, sample_size=10, seed=6)
    assert [p.kept for p in a] != [p.kept for p in c]


def test_select_combinations_invalid_sample():
    with pytest.raises(ConfigError):
        select_combinations(_context(3), sample_size=0)


def test_select_all_permutations():
    context = _context(3)
    perturbations = select_permutations(context)
    assert len(perturbations) == 6
    for p in perturbations:
        p.validate(context)


def test_select_permutations_exclude_identity():
    context = _context(3)
    perturbations = select_permutations(context, include_identity=False)
    assert len(perturbations) == 5
    assert all(not p.is_identity(context) for p in perturbations)


def test_select_permutations_sampled_large_k():
    context = _context(12)  # 12! is far beyond enumeration
    perturbations = select_permutations(context, sample_size=30, seed=2)
    assert len(perturbations) == 30
    for p in perturbations:
        p.validate(context)


def test_select_permutations_exhaustive_cap():
    with pytest.raises(ConfigError):
        select_permutations(_context(9))


def test_select_permutations_invalid_sample():
    with pytest.raises(ConfigError):
        select_permutations(_context(3), sample_size=-1)


def test_sampled_exclude_identity_meets_requested_size_for_every_seed():
    """Regression: filtering the identity *after* sampling silently
    returned sample_size - 1 permutations whenever the identity was
    drawn.  With k=3 and sample_size=2 many seeds used to under-fill."""
    context = _context(3)
    for seed in range(40):
        perturbations = select_permutations(
            context, sample_size=2, seed=seed, include_identity=False
        )
        assert len(perturbations) == 2, f"seed {seed} under-sampled"
        assert all(not p.is_identity(context) for p in perturbations)


def test_sampled_exclude_identity_caps_at_population():
    context = _context(3)
    perturbations = select_permutations(
        context, sample_size=50, seed=0, include_identity=False
    )
    assert len(perturbations) == 6 - 1  # 3! minus the identity
    assert len({p.order for p in perturbations}) == 5


def test_sampled_exclude_identity_distinct_and_deterministic():
    context = _context(4)
    a = select_permutations(context, sample_size=10, seed=3, include_identity=False)
    b = select_permutations(context, sample_size=10, seed=3, include_identity=False)
    assert [p.order for p in a] == [p.order for p in b]
    assert len({p.order for p in a}) == 10
