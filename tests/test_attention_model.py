"""Synthetic attention model tests."""

import math

import pytest

from repro.attention import (
    AttentionModel,
    PositionPrior,
    aggregate_by_source,
    combination_score,
    normalize_scores,
    rank_sources,
    source_attention_scores,
)
from repro.errors import ConfigError

QUERY = "who won the championship"
SOURCES = [
    "Alpha won the championship in 2020 with a great season.",
    "Some completely unrelated text about gardening and soil.",
    "Beta won the championship in 2021 after a strong run.",
]


@pytest.fixture(scope="module")
def model():
    return AttentionModel(num_layers=3, num_heads=2, seed=1, depth=0.8)


def test_trace_shape(model):
    trace = model.trace(QUERY, SOURCES)
    assert trace.num_layers == 3
    assert trace.num_heads == 2
    assert all(len(entry.values) == 3 for entry in trace.tokens)
    assert all(len(layer) == 2 for entry in trace.tokens for layer in entry.values)


def test_trace_deterministic(model):
    t1 = model.trace(QUERY, SOURCES)
    t2 = model.trace(QUERY, SOURCES)
    assert t1.source_totals == t2.source_totals


def test_different_seed_different_values():
    a = AttentionModel(seed=1).trace(QUERY, SOURCES)
    b = AttentionModel(seed=2).trace(QUERY, SOURCES)
    assert a.source_totals != b.source_totals


def test_empty_context(model):
    trace = model.trace(QUERY, [])
    assert trace.source_totals == []
    assert trace.source_share() == []


def test_positional_bias_visible(model):
    """With a V prior, identical texts at the ends out-attend the middle."""
    same = ["identical text about the championship"] * 5
    trace = model.trace(QUERY, same)
    totals = trace.source_totals
    assert totals[0] > totals[2]
    assert totals[4] > totals[2]


def test_salient_tokens_attract_attention(model):
    trace = model.trace(QUERY, SOURCES)
    by_source = {}
    for entry in trace.tokens:
        by_source.setdefault(entry.source_index, []).append(entry)
    champ_tokens = [e for e in by_source[0] if e.token.lower() == "championship"]
    other_tokens = [e for e in by_source[0] if e.token.lower() == "season"]
    assert champ_tokens and other_tokens
    assert champ_tokens[0].total() > other_tokens[0].total()


def test_source_share_sums_to_one(model):
    share = model.trace(QUERY, SOURCES).source_share()
    assert math.isclose(sum(share), 1.0, rel_tol=1e-9)


def test_aggregate_by_source(model):
    trace = model.trace(QUERY, SOURCES)
    scores = aggregate_by_source(trace, ["a", "b", "c"])
    assert set(scores) == {"a", "b", "c"}
    assert scores["a"] == pytest.approx(trace.source_totals[0])


def test_aggregate_missing_sources(model):
    trace = model.trace(QUERY, SOURCES[:2])
    scores = aggregate_by_source(trace, ["a", "b", "c"])
    assert scores["c"] == 0.0


def test_combination_score_is_sum():
    scores = {"a": 1.0, "b": 2.0, "c": 4.0}
    assert combination_score(scores, ["a", "c"]) == 5.0
    assert combination_score(scores, []) == 0.0
    assert combination_score(scores, ["missing"]) == 0.0


def test_normalize_scores():
    normalized = normalize_scores({"a": 1.0, "b": 3.0})
    assert normalized == {"a": 0.25, "b": 0.75}
    assert normalize_scores({"a": 0.0}) == {"a": 0.0}


def test_rank_sources():
    assert rank_sources({"a": 1.0, "b": 3.0, "c": 2.0}) == ["b", "c", "a"]
    assert rank_sources({"b": 1.0, "a": 1.0}) == ["a", "b"]  # id tiebreak


def test_source_attention_scores(model):
    trace = model.trace(QUERY, SOURCES)
    scores = source_attention_scores(trace)
    assert set(scores) == {0, 1, 2}


def test_invalid_model_shape():
    with pytest.raises(ConfigError):
        AttentionModel(num_layers=0)
    with pytest.raises(ConfigError):
        AttentionModel(num_heads=0)


def test_uniform_prior_no_position_bias():
    model = AttentionModel(prior=PositionPrior.UNIFORM, seed=3)
    same = ["identical words here"] * 4
    totals = model.trace(QUERY, same).source_totals
    # Hash noise varies per (source, token) but stays within (0.5, 1.5)x
    # of the base, so no position can dominate by more than 3x.
    assert max(totals) / min(totals) < 3.0
