"""Property-based tests for the explanation core on synthetic worlds."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rage, RageConfig, SimulatedLLM
from repro.attention import PositionPrior, position_weights
from repro.core import (
    ContextEvaluator,
    analyze_combinations,
    naive_optimal_permutations,
    optimal_permutations,
    search_combination_counterfactual,
    select_combinations,
)
from repro.core.context import Context
from repro.datasets import make_superlative_world
from repro.retrieval import Document
from repro.textproc import normalize_answer

world_seeds = st.integers(min_value=0, max_value=500)


def _engine(world, k):
    return Rage.from_corpus(
        world.corpus,
        SimulatedLLM(knowledge=world.knowledge),
        config=RageConfig(k=k, max_evaluations=4000),
    )


@given(world_seeds, st.integers(min_value=3, max_value=6))
@settings(max_examples=15, deadline=None)
def test_counterfactual_minimality(seed, k):
    """Any found counterfactual is minimal in subset size: the search is
    size-major and exhaustive below the found size."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    context = engine.retrieve(world.query)
    evaluator = ContextEvaluator(engine.llm, context)
    scores = engine.relevance_scores(context)
    result = search_combination_counterfactual(
        evaluator, scores, keep_trail=True, max_evaluations=5000
    )
    if not result.found:
        return
    found_size = result.counterfactual.size
    import itertools

    smaller = {
        combo
        for size in range(1, found_size)
        for combo in itertools.combinations(context.doc_ids(), size)
    }
    tried = {combo for combo, _ in result.trail}
    assert smaller <= tried
    baseline_norm = normalize_answer(result.baseline_answer)
    for combo, answer in result.trail:
        if len(combo) < found_size:
            assert normalize_answer(answer) == baseline_norm


@given(world_seeds, st.integers(min_value=3, max_value=6))
@settings(max_examples=15, deadline=None)
def test_counterfactual_verifies(seed, k):
    """Applying the found perturbation really changes the answer."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    context = engine.retrieve(world.query)
    evaluator = ContextEvaluator(engine.llm, context)
    scores = engine.relevance_scores(context)
    result = search_combination_counterfactual(evaluator, scores, max_evaluations=5000)
    if not result.found:
        return
    replay = evaluator.evaluate(result.counterfactual.perturbation.apply(context))
    assert replay.normalized_answer == normalize_answer(result.counterfactual.new_answer)
    assert replay.normalized_answer != normalize_answer(result.baseline_answer)


@given(world_seeds, st.integers(min_value=3, max_value=5))
@settings(max_examples=10, deadline=None)
def test_insight_rules_sound(seed, k):
    """Every rule's sources appear in every combination of its answer."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    context = engine.retrieve(world.query)
    evaluator = ContextEvaluator(engine.llm, context)
    insights = analyze_combinations(evaluator, select_combinations(context))
    assert insights.total == 2**context.k - 1
    for rule in insights.rules:
        key = normalize_answer(rule.answer)
        for combo in insights.groups[key]:
            assert set(rule.required_sources) <= set(combo.kept)


@given(
    world_seeds,
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=20, deadline=None)
def test_optimal_matches_naive(seed, k, s):
    rng = random.Random(seed)
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q", docs)
    scores = {f"d{i}": rng.uniform(0, 1) for i in range(k)}
    weights = position_weights(PositionPrior.V_SHAPED, k, depth=0.8)
    fast = optimal_permutations(context, scores, s=s, attention_weights=weights)
    naive = naive_optimal_permutations(context, scores, s, weights)
    assert [round(p.score, 9) for p in fast] == [round(p.score, 9) for p in naive]


@given(world_seeds, st.integers(min_value=3, max_value=5))
@settings(max_examples=10, deadline=None)
def test_answer_distribution_complete(seed, k):
    """Insight groups partition the analyzed perturbations."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    insights = engine.combination_insights(world.query)
    total = sum(len(group) for group in insights.groups.values())
    assert total == insights.total
    seen = set()
    for group in insights.groups.values():
        for perturbation in group:
            assert perturbation.kept not in seen
            seen.add(perturbation.kept)


# -- answer-implication pruning (PR 2) ---------------------------------------




class _CallCountingLLM:
    """Counts prompts reaching the model, single or batched."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    @property
    def name(self):
        return f"counting({self.inner.name})"

    def generate(self, prompt):
        self.calls += 1
        return self.inner.generate(prompt)

    def generate_batch(self, prompts):
        self.calls += len(prompts)
        return self.inner.generate_batch(prompts)


def _explain_with(world, k, plan_pruning, **kwargs):
    llm = _CallCountingLLM(SimulatedLLM(knowledge=world.knowledge))
    rage = Rage.from_corpus(
        world.corpus,
        llm,
        config=RageConfig(
            k=k, cache=False, max_evaluations=60, plan_pruning=plan_pruning
        ),
    )
    return rage.explain(world.query, **kwargs), llm


def _groups_signature(insights):
    return {
        key: sorted(combo.kept for combo in combos)
        for key, combos in insights.groups.items()
    }


def _counterfactual_signature(result):
    cf = result.counterfactual
    return (
        result.found,
        None if cf is None else (cf.changed_sources, cf.new_answer, cf.size),
        result.baseline_answer,
    )


def _assert_pruned_matches_unpruned(world, k, **kwargs):
    pruned_report, pruned_llm = _explain_with(world, k, True, **kwargs)
    plain_report, plain_llm = _explain_with(world, k, False, **kwargs)
    assert pruned_report.answer == plain_report.answer
    assert _groups_signature(pruned_report.combination_insights) == _groups_signature(
        plain_report.combination_insights
    )
    assert (
        pruned_report.combination_insights.display_answers
        == plain_report.combination_insights.display_answers
    )
    assert (
        pruned_report.combination_insights.rules
        == plain_report.combination_insights.rules
    )
    assert _counterfactual_signature(pruned_report.top_down) == (
        _counterfactual_signature(plain_report.top_down)
    )
    assert _counterfactual_signature(pruned_report.bottom_up) == (
        _counterfactual_signature(plain_report.bottom_up)
    )
    # Pruning must never cost extra LLM calls.
    assert pruned_llm.calls <= plain_llm.calls
    return pruned_report, pruned_llm, plain_llm


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=6, max_value=8))
@settings(max_examples=10, deadline=None)
def test_pruned_explain_exact_on_counting_worlds(seed, k):
    """Monotone (counting) worlds: implication is sound, so the pruned
    report is answer-for-answer identical while making fewer calls."""
    from repro.datasets import make_timeline_world

    world = make_timeline_world(k, seed=seed)
    _assert_pruned_matches_unpruned(
        world, k, permutation_sample=30, stability_sample=30
    )


@given(st.integers(min_value=0, max_value=150), st.integers(min_value=5, max_value=6))
@settings(max_examples=10, deadline=None)
def test_pruned_explain_exact_on_superlative_worlds(seed, k):
    """Position-weighted (non-monotone) worlds: the order-stability
    gate, probes and conflict rollback must keep the pruned report
    identical — usually by refusing to imply anything at all."""
    world = make_superlative_world(k, seed=seed)
    _assert_pruned_matches_unpruned(
        world, k, permutation_sample=30, stability_sample=30
    )


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=4, max_value=8),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_lattice_sandwich_sound_for_monotone_functions(seed, k, recorded):
    """Core soundness: for any monotone answer function, any implication
    the lattice commits equals the true answer."""
    from repro.core import AnswerLattice
    from repro.core.context import Context
    from repro.retrieval import Document

    rng = random.Random(seed)
    docs = [Document(doc_id=f"d{i}", text=f"t{i}") for i in range(k)]
    context = Context.from_documents("q", docs)
    relevant = rng.sample(range(k), rng.randint(1, k))
    threshold = rng.randint(1, len(relevant))

    def truth(mask):
        hits = sum(1 for i in relevant if mask >> i & 1)
        return "yes" if hits >= threshold else "no"

    lattice = AnswerLattice(context, assume_order_insensitive=True)
    masks = rng.sample(range(1, 1 << k), min(recorded, (1 << k) - 1))
    for mask in masks:
        lattice.record(lattice.decode(mask), truth(mask), truth(mask))
    for mask in range(1, 1 << k):
        entry = lattice.implied(mask)
        if entry is not None:
            assert entry.normalized_answer == truth(mask), (mask, masks)
