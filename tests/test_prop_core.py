"""Property-based tests for the explanation core on synthetic worlds."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Rage, RageConfig, SimulatedLLM
from repro.attention import PositionPrior, position_weights
from repro.core import (
    ContextEvaluator,
    analyze_combinations,
    naive_optimal_permutations,
    optimal_permutations,
    search_combination_counterfactual,
    select_combinations,
)
from repro.core.context import Context
from repro.datasets import make_superlative_world
from repro.retrieval import Document
from repro.textproc import normalize_answer

world_seeds = st.integers(min_value=0, max_value=500)


def _engine(world, k):
    return Rage.from_corpus(
        world.corpus,
        SimulatedLLM(knowledge=world.knowledge),
        config=RageConfig(k=k, max_evaluations=4000),
    )


@given(world_seeds, st.integers(min_value=3, max_value=6))
@settings(max_examples=15, deadline=None)
def test_counterfactual_minimality(seed, k):
    """Any found counterfactual is minimal in subset size: the search is
    size-major and exhaustive below the found size."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    context = engine.retrieve(world.query)
    evaluator = ContextEvaluator(engine.llm, context)
    scores = engine.relevance_scores(context)
    result = search_combination_counterfactual(
        evaluator, scores, keep_trail=True, max_evaluations=5000
    )
    if not result.found:
        return
    found_size = result.counterfactual.size
    import itertools

    smaller = {
        combo
        for size in range(1, found_size)
        for combo in itertools.combinations(context.doc_ids(), size)
    }
    tried = {combo for combo, _ in result.trail}
    assert smaller <= tried
    baseline_norm = normalize_answer(result.baseline_answer)
    for combo, answer in result.trail:
        if len(combo) < found_size:
            assert normalize_answer(answer) == baseline_norm


@given(world_seeds, st.integers(min_value=3, max_value=6))
@settings(max_examples=15, deadline=None)
def test_counterfactual_verifies(seed, k):
    """Applying the found perturbation really changes the answer."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    context = engine.retrieve(world.query)
    evaluator = ContextEvaluator(engine.llm, context)
    scores = engine.relevance_scores(context)
    result = search_combination_counterfactual(evaluator, scores, max_evaluations=5000)
    if not result.found:
        return
    replay = evaluator.evaluate(result.counterfactual.perturbation.apply(context))
    assert replay.normalized_answer == normalize_answer(result.counterfactual.new_answer)
    assert replay.normalized_answer != normalize_answer(result.baseline_answer)


@given(world_seeds, st.integers(min_value=3, max_value=5))
@settings(max_examples=10, deadline=None)
def test_insight_rules_sound(seed, k):
    """Every rule's sources appear in every combination of its answer."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    context = engine.retrieve(world.query)
    evaluator = ContextEvaluator(engine.llm, context)
    insights = analyze_combinations(evaluator, select_combinations(context))
    assert insights.total == 2**context.k - 1
    for rule in insights.rules:
        key = normalize_answer(rule.answer)
        for combo in insights.groups[key]:
            assert set(rule.required_sources) <= set(combo.kept)


@given(
    world_seeds,
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=20, deadline=None)
def test_optimal_matches_naive(seed, k, s):
    rng = random.Random(seed)
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    context = Context.from_documents("q", docs)
    scores = {f"d{i}": rng.uniform(0, 1) for i in range(k)}
    weights = position_weights(PositionPrior.V_SHAPED, k, depth=0.8)
    fast = optimal_permutations(context, scores, s=s, attention_weights=weights)
    naive = naive_optimal_permutations(context, scores, s, weights)
    assert [round(p.score, 9) for p in fast] == [round(p.score, 9) for p in naive]


@given(world_seeds, st.integers(min_value=3, max_value=5))
@settings(max_examples=10, deadline=None)
def test_answer_distribution_complete(seed, k):
    """Insight groups partition the analyzed perturbations."""
    world = make_superlative_world(k, seed=seed)
    engine = _engine(world, k)
    insights = engine.combination_insights(world.query)
    total = sum(len(group) for group in insights.groups.values())
    assert total == insights.total
    seen = set()
    for group in insights.groups.values():
        for perturbation in group:
            assert perturbation.kept not in seen
            seen.add(perturbation.kept)
