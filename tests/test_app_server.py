"""The multi-tenant HTTP serving layer, end to end and hermetic.

Every request here crosses a real socket — but only on loopback: the
network guard installed by ``conftest`` fails anything that tries to
leave the machine.  The load-bearing assertions are *byte* equality
between served responses and the in-process engine (the server must be
a transport, never a different computation) and the per-tenant
admission bounds verified against the server's own journal.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from fakes import (
    CountingLLM,
    FakeLLMServer,
    LatencyLLM,
    http_json,
    simulated_answer_fn,
)

from repro import Rage, RageConfig, SimulatedLLM
from repro.app import RageSession
from repro.app.server import (
    DEFAULT_ADMIT_BURST,
    RageServer,
    ask_payload,
    encode_json,
    report_payload,
)
from repro.datasets import load_use_case
from repro.errors import ConfigError
from repro.llm.remote import RemoteLLM
from repro.llm.transport import RetryPolicy


@pytest.fixture()
def server():
    with RageServer.for_use_case("big_three", tenants=["alice", "bob"]) as srv:
        yield srv


def _reference_session(name="big_three", query=None, **config_kwargs):
    """An in-process session answering exactly like the server should."""
    case = load_use_case(name)
    config = RageConfig(k=case.k, **config_kwargs)
    session = RageSession.for_use_case(case, config=config)
    if query is not None:
        session.pose(query)
    return session


# ---------------------------------------------------------------------------
# Plumbing: health, routing, request validation


def test_healthz(server):
    status, _, body = http_json.get(server.base_url + "/healthz")
    payload = http_json.body_json(body)
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["tenants"] == 2


def test_unknown_paths_404(server):
    status, _, _ = http_json.get(server.base_url + "/nope")
    assert status == 404
    status, _, _ = http_json.post_json(server.base_url + "/nope", {"tenant": "alice"})
    assert status == 404


def test_request_validation(server):
    status, _, body = http_json.post_json(server.base_url + "/ask", {})
    assert status == 400 and b"tenant" in body
    status, _, _ = http_json.post_json(
        server.base_url + "/ask", {"tenant": "mallory"}
    )
    assert status == 404
    status, _, _ = http_json.post_raw(server.base_url + "/ask", b"{not json")
    assert status == 400
    status, _, body = http_json.post_json(
        server.base_url + "/explain", {"tenant": "alice", "sample_size": "many"}
    )
    assert status == 400 and b"sample_size" in body


def test_explain_before_ask_is_a_client_error(server):
    status, _, body = http_json.post_json(
        server.base_url + "/explain", {"tenant": "alice"}
    )
    assert status == 400
    assert b"pose a question first" in body


def test_server_constructor_validation():
    case = load_use_case("big_three")
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )
    with pytest.raises(ConfigError):
        RageServer(rage, tenants=[])
    with pytest.raises(ConfigError):
        RageServer(rage, tenants=["a", "a"])
    with pytest.raises(ConfigError):
        RageServer(rage, tenants=["a"], admit_burst=3)  # burst without rate
    with pytest.raises(ConfigError):
        # An explicit 0 must be rejected, not coerced to the default.
        RageServer(rage, tenants=["a"], admit_rate=5.0, admit_burst=0)


# ---------------------------------------------------------------------------
# Byte-identity with the in-process engine


def test_ask_matches_in_process_session(server):
    status, _, body = http_json.post_json(
        server.base_url + "/ask", {"tenant": "alice"}
    )
    assert status == 200
    reference = _reference_session()
    query, context, answer = reference.state()
    assert body == encode_json(ask_payload("alice", query, context, answer))


def test_explain_matches_in_process_report_byte_for_byte(server):
    http_json.post_json(server.base_url + "/ask", {"tenant": "alice"})
    status, _, body = http_json.post_json(
        server.base_url + "/explain", {"tenant": "alice"}
    )
    assert status == 200
    reference = _reference_session()
    assert body == encode_json(report_payload(reference.report()))


def test_explain_honors_sample_size(server):
    http_json.post_json(server.base_url + "/ask", {"tenant": "bob"})
    status, _, body = http_json.post_json(
        server.base_url + "/explain", {"tenant": "bob", "sample_size": 10}
    )
    assert status == 200
    reference = _reference_session()
    expected = encode_json(report_payload(reference.report(sample_size=10)))
    assert body == expected


def test_concurrent_multi_tenant_requests_stay_byte_identical():
    """The acceptance shape: N tenants asking and explaining at once,
    every response byte-identical to a fresh in-process engine."""
    case = load_use_case("big_three")
    queries = {
        "alice": case.query,
        "bob": "Who is the best tennis player by head to head record?",
        "carol": "Who won the most weeks at number one?",
    }
    expected = {}
    for tenant, query in queries.items():
        reference = _reference_session(query=query)
        ref_query, ref_context, ref_answer = reference.state()
        expected[tenant] = {
            "ask": encode_json(
                ask_payload(tenant, ref_query, ref_context, ref_answer)
            ),
            "explain": encode_json(report_payload(reference.report())),
        }

    results = {}
    errors = []

    def drive(base_url, tenant, query):
        try:
            ask_status, _, ask_body = http_json.post_json(
                base_url + "/ask", {"tenant": tenant, "query": query}
            )
            explain_status, _, explain_body = http_json.post_json(
                base_url + "/explain", {"tenant": tenant}
            )
            results[tenant] = (ask_status, ask_body, explain_status, explain_body)
        except Exception as error:  # pragma: no cover - diagnostic aid
            errors.append((tenant, error))

    with RageServer.for_use_case(
        "big_three", tenants=list(queries)
    ) as server:
        threads = [
            threading.Thread(target=drive, args=(server.base_url, tenant, query))
            for tenant, query in queries.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert set(results) == set(queries)
        for tenant in queries:
            ask_status, ask_body, explain_status, explain_body = results[tenant]
            assert ask_status == 200 and explain_status == 200
            assert ask_body == expected[tenant]["ask"]
            assert explain_body == expected[tenant]["explain"]
        # All six requests really went through the one shared engine.
        assert server.request_count() == 6
        assert server.rage.backend.stats.batches > 0


def test_concurrent_asks_on_one_tenant_answer_their_own_query():
    """Regression: /ask must answer from its *own* pose, not from the
    session's latest state — two racing asks on one tenant each get
    the answer to the question they sent."""
    case = load_use_case("big_three")
    queries = [
        case.query,
        "Who is the best tennis player by head to head record?",
    ]
    expected = {}
    for query in queries:
        reference = _reference_session(query=query)
        _, context, answer = reference.state()
        expected[query] = encode_json(ask_payload("a", query, context, answer))

    with RageServer.for_use_case("big_three", tenants=["a"]) as server:
        for _ in range(5):  # a handful of racing rounds
            bodies = {}

            def drive(query):
                status, _, body = http_json.post_json(
                    server.base_url + "/ask", {"tenant": "a", "query": query}
                )
                bodies[query] = (status, body)

            threads = [
                threading.Thread(target=drive, args=(query,))
                for query in queries
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            for query in queries:
                status, body = bodies[query]
                assert status == 200
                assert body == expected[query]


def test_crashing_model_becomes_500_json_and_is_journaled(server):
    tenant = server.tenant("alice")

    def exploding_ask(query, context=None, evaluator=None):
        raise RuntimeError("model fell over")

    real_ask = server.rage.ask
    server.rage.ask = exploding_ask
    try:
        status, _, body = http_json.post_json(
            server.base_url + "/ask", {"tenant": "alice"}
        )
    finally:
        server.rage.ask = real_ask
    assert status == 500
    assert http_json.body_json(body) == {"error": "RuntimeError: model fell over"}
    assert server.statuses("alice") == [500]
    # The session survives the crash and serves the next request.
    status, _, _ = http_json.post_json(server.base_url + "/ask", {"tenant": "alice"})
    assert status == 200
    assert tenant.admitted == 2


def test_failing_metrics_render_becomes_500_json(server):
    real_metrics = server.metrics_payload
    server.metrics_payload = lambda: (_ for _ in ()).throw(
        OSError("store vanished")
    )
    try:
        status, _, body = http_json.get(server.base_url + "/metrics")
    finally:
        server.metrics_payload = real_metrics
    assert status == 500
    assert http_json.body_json(body) == {"error": "OSError: store vanished"}
    status, _, _ = http_json.get(server.base_url + "/metrics")
    assert status == 200  # the server survives


def test_journal_is_bounded_but_totals_are_not():
    with RageServer.for_use_case(
        "big_three", tenants=["a"], journal_limit=3
    ) as server:
        for _ in range(7):
            http_json.post_json(server.base_url + "/ask", {"tenant": "a"})
        assert len(server.journal) == 3  # retention window
        assert server.request_count() == 7  # lifetime total
        metrics = json.loads(
            http_json.get(server.base_url + "/metrics")[2].decode("utf-8")
        )
        assert metrics["server"]["requests"] == 7
    with pytest.raises(ConfigError):
        RageServer.for_use_case("big_three", tenants=["a"], journal_limit=0)


def test_tenants_share_one_engine_cache():
    """Two tenants asking the same question pay the LLM once."""
    case = load_use_case("big_three")
    counting = CountingLLM(SimulatedLLM(knowledge=case.knowledge))
    rage = Rage.from_corpus(case.corpus, counting, config=RageConfig(k=case.k))
    with RageServer(rage, tenants=["a", "b"], default_query=case.query) as server:
        http_json.post_json(server.base_url + "/ask", {"tenant": "a"})
        calls_after_first = counting.calls
        http_json.post_json(server.base_url + "/ask", {"tenant": "b"})
        assert counting.calls == calls_after_first  # served from cache


# ---------------------------------------------------------------------------
# Admission: per-tenant 429 + Retry-After, verified against the journal


def test_admission_429_with_retry_after_and_refund():
    with RageServer.for_use_case(
        "big_three", tenants=["a", "b"], admit_rate=0.5, admit_burst=2
    ) as server:
        statuses = []
        retry_afters = []
        for _ in range(5):
            status, headers, body = http_json.post_json(
                server.base_url + "/ask", {"tenant": "a"}
            )
            statuses.append(status)
            if status == 429:
                retry_afters.append(
                    (float(headers["retry-after"]), http_json.body_json(body))
                )
        assert statuses[:2] == [200, 200]
        assert statuses[2:] == [429, 429, 429]
        for header_value, payload in retry_afters:
            assert header_value >= 1  # integral delta-seconds, ceiled
            assert payload["error"] == "rate limited"
            assert 0.0 < payload["retry_after"] <= 4.0
        # Rejections refund their reservation: the advertised wait must
        # not grow with each rejected request (the leak's signature was
        # retry_after climbing by 1/rate per rejection).
        waits = [payload["retry_after"] for _, payload in retry_afters]
        assert max(waits) - min(waits) < 1 / 0.5
        # The other tenant's bucket is untouched.
        status, _, _ = http_json.post_json(
            server.base_url + "/ask", {"tenant": "b"}
        )
        assert status == 200
        # Journal agrees with what clients observed.
        assert server.statuses("a") == statuses
        assert server.tenant("a").admitted == 2
        assert server.tenant("a").rejected == 3
        assert server.tenant("b").rejected == 0


def test_admission_bounds_hold_in_every_window():
    """Token-bucket contract at the server: admitted requests in any
    window W never exceed burst + rate * W."""
    rate, burst = 50.0, 3
    with RageServer.for_use_case(
        "big_three", tenants=["a"], admit_rate=rate, admit_burst=burst
    ) as server:
        for _ in range(30):
            http_json.post_json(server.base_url + "/ask", {"tenant": "a"})
        window = 0.2
        observed = server.max_admitted_per_window("a", window=window)
        # Journal stamps are admission-decision times; the +1 covers
        # stamp-vs-decision reordering between racing handler threads.
        assert observed <= burst + rate * window + 1
        assert server.tenant("a").admitted + server.tenant("a").rejected == 30


def test_unlimited_admission_without_rate():
    with RageServer.for_use_case("big_three", tenants=["a"]) as server:
        statuses = [
            http_json.post_json(server.base_url + "/ask", {"tenant": "a"})[0]
            for _ in range(8)
        ]
        assert statuses == [200] * 8
        assert server.tenant("a").admitted == 8
        assert server.tenant("a").rejected == 0


# ---------------------------------------------------------------------------
# Metrics


def test_metrics_schema_and_counters(tmp_path):
    config = RageConfig(k=4, cache_dir=str(tmp_path / "store"))
    with RageServer.for_use_case(
        "big_three",
        tenants=["alice", "bob"],
        config=config,
        admit_rate=100.0,
    ) as server:
        http_json.post_json(server.base_url + "/ask", {"tenant": "alice"})
        http_json.post_json(server.base_url + "/explain", {"tenant": "alice"})
        status, _, body = http_json.get(server.base_url + "/metrics")
        assert status == 200
        metrics = json.loads(body.decode("utf-8"))

        assert set(metrics) == {
            "server", "admission", "backend", "cache", "coalescing",
            "retrieval", "store", "remote", "router",
        }
        retrieval = metrics["retrieval"]
        assert retrieval["backend"] == "memory"
        assert retrieval["mode"] == "bm25"
        assert retrieval["fusion"] is None
        assert retrieval["documents"] > 0
        assert retrieval["vocabulary"] > 0
        assert metrics["server"]["tenants"] == ["alice", "bob"]
        assert metrics["server"]["requests"] == 2
        admission = metrics["admission"]
        assert set(admission) == {"alice", "bob"}
        assert admission["alice"]["admitted"] == 2
        assert admission["alice"]["rejected"] == 0
        assert admission["alice"]["rate"] == 100.0
        assert admission["alice"]["burst"] == DEFAULT_ADMIT_BURST
        assert admission["bob"]["admitted"] == 0
        backend = metrics["backend"]
        assert backend["name"] == "serial"
        assert backend["batches"] > 0 and backend["prompts"] > 0
        assert backend["max_active"] >= 1
        cache = metrics["cache"]
        assert cache["hits"] + cache["misses"] > 0
        coalescing = metrics["coalescing"]
        single_flight = coalescing["single_flight"]
        assert single_flight["enabled"] is True
        assert single_flight["flights"] == cache["misses"]
        assert single_flight["inflight_keys"] == 0  # quiescent server
        assert single_flight["waiters_served"] == 0  # serial requests
        assert coalescing["window"] == {"enabled": False}
        store = metrics["store"]
        assert store["root"].endswith("store")
        assert store["writes"] > 0 and store["entries"] > 0
        assert store["bytes"] > 0
        assert metrics["remote"] is None  # simulated model, no transport
        assert metrics["router"] is None  # single model, no pool


def test_metrics_surface_remote_usage_and_transport_stats():
    """A remote-backed server reports RemoteLLM usage + TransportStats."""
    case = load_use_case("big_three")
    with FakeLLMServer(answer_fn=simulated_answer_fn(case.knowledge)) as fake:
        llm = RemoteLLM(
            "openai",
            "fake-model",
            base_url=fake.base_url,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
        rage = Rage.from_corpus(case.corpus, llm, config=RageConfig(k=case.k))
        with RageServer(
            rage, tenants=["a"], default_query=case.query
        ) as server:
            status, _, body = http_json.post_json(
                server.base_url + "/ask", {"tenant": "a"}
            )
            assert status == 200
            assert http_json.body_json(body)["answer"] == "Roger Federer"
            metrics = json.loads(
                http_json.get(server.base_url + "/metrics")[2].decode("utf-8")
            )
            remote = metrics["remote"]
            assert remote["model"] == "remote:openai/fake-model"
            assert remote["usage"]["calls"] == fake.request_count > 0
            assert remote["usage"]["total_tokens"] > 0
            assert remote["transport"]["requests"] == fake.request_count
            assert remote["transport"]["retries"] == 0


# ---------------------------------------------------------------------------
# Shared persistent store across server lifetimes


def test_second_server_answers_warm_from_shared_store(tmp_path):
    store_dir = str(tmp_path / "store")
    case = load_use_case("big_three")

    def build():
        counting = CountingLLM(SimulatedLLM(knowledge=case.knowledge))
        rage = Rage.from_corpus(
            case.corpus,
            counting,
            config=RageConfig(k=case.k, cache_dir=store_dir),
        )
        return counting, RageServer(rage, tenants=["a"], default_query=case.query)

    counting_cold, server_cold = build()
    with server_cold:
        http_json.post_json(server_cold.base_url + "/ask", {"tenant": "a"})
        cold_body = http_json.post_json(
            server_cold.base_url + "/explain", {"tenant": "a"}
        )[2]
    assert counting_cold.calls > 0

    counting_warm, server_warm = build()
    with server_warm:
        http_json.post_json(server_warm.base_url + "/ask", {"tenant": "a"})
        warm_body = http_json.post_json(
            server_warm.base_url + "/explain", {"tenant": "a"}
        )[2]
        metrics = json.loads(
            http_json.get(server_warm.base_url + "/metrics")[2].decode("utf-8")
        )
    assert counting_warm.calls == 0  # every generation came from disk
    assert warm_body == cold_body
    assert metrics["store"]["hits"] > 0

    # Both server lifetimes persisted their counters without clobbering
    # each other (the _meta lost-update bugfix, via RageServer.close).
    from repro.llm.store import PromptStore

    merged = PromptStore(store_dir).read_meta()
    assert merged["writes"] == counting_cold.calls
    assert merged["hits"] >= metrics["store"]["hits"]


# ---------------------------------------------------------------------------
# Readiness-aware /healthz, router metrics, graceful drain


def _dead_base_url():
    """A loopback URL nothing listens on (connections refused)."""
    with FakeLLMServer() as probe:
        url = probe.base_url
    return url


def _pool_server(providers, tenants=("a",), **config_kwargs):
    case = load_use_case("big_three")
    config = RageConfig(
        k=case.k, providers=providers, retries=0, **config_kwargs
    )
    return RageServer.for_use_case(case, list(tenants), config=config)


def test_healthz_reports_providers_for_a_router_pool():
    with _pool_server(("fallback:simulated",)) as server:
        status, _, body = http_json.get(server.base_url + "/healthz")
        payload = http_json.body_json(body)
        assert status == 200
        assert payload["status"] == "ok"
        providers = payload["providers"]
        assert len(providers) == 1
        assert set(providers[0]) == {"name", "state", "available"}
        assert providers[0]["state"] == "closed"
        assert providers[0]["available"] is True


def test_healthz_degraded_when_a_breaker_is_open():
    providers = (
        f"remote:openai:fake-a@{_dead_base_url()}",
        "fallback:simulated",
    )
    with _pool_server(providers, breaker_threshold=1) as server:
        # The request still answers (fallback serves) ...
        status, _, body = http_json.post_json(
            server.base_url + "/ask", {"tenant": "a"}
        )
        assert status == 200
        assert http_json.body_json(body)["answer"] == "Roger Federer"
        # ... but readiness now says the primary's breaker is open.
        status, _, body = http_json.get(server.base_url + "/healthz")
        payload = http_json.body_json(body)
        assert status == 200
        assert payload["status"] == "degraded"
        assert "remote:openai/fake-a" in payload["detail"]
        states = {p["name"]: p["state"] for p in payload["providers"]}
        assert states["remote:openai/fake-a"] == "open"


def test_healthz_unhealthy_when_no_provider_is_available():
    providers = (f"remote:openai:fake-a@{_dead_base_url()}",)
    with _pool_server(providers, breaker_threshold=1) as server:
        status, _, _ = http_json.post_json(
            server.base_url + "/ask", {"tenant": "a"}
        )
        assert status == 500  # the pool was exhausted
        status, _, body = http_json.get(server.base_url + "/healthz")
        payload = http_json.body_json(body)
        assert status == 503
        assert payload["status"] == "unhealthy"
        assert payload["detail"] == "no provider available"


def test_metrics_surface_router_breaker_state_and_attribution():
    providers = (
        f"remote:openai:fake-a@{_dead_base_url()}",
        "fallback:simulated",
    )
    with _pool_server(providers, breaker_threshold=1) as server:
        http_json.post_json(server.base_url + "/ask", {"tenant": "a"})
        metrics = json.loads(
            http_json.get(server.base_url + "/metrics")[2].decode("utf-8")
        )
        router = metrics["router"]
        assert router["requests"] >= 1
        assert router["failovers"] >= 1
        assert router["hedges_fired"] == 0
        by_name = {p["name"]: p for p in router["providers"]}
        primary = by_name["remote:openai/fake-a"]
        assert primary["state"] == "open"
        assert primary["trips"] == 1
        assert primary["failures"] >= 1
        fallback = next(
            p for name, p in by_name.items() if name.startswith("simulated")
        )
        assert fallback["state"] == "closed"
        assert fallback["calls"] >= 1
        # A router-backed server reports through "router", not "remote".
        assert metrics["remote"] is None


def test_draining_server_rejects_new_posts_but_finishes_inflight():
    case = load_use_case("big_three")
    slow = LatencyLLM(SimulatedLLM(knowledge=case.knowledge), latency=0.6)
    rage = Rage.from_corpus(case.corpus, slow, config=RageConfig(k=case.k))
    server = RageServer(
        rage, tenants=["a"], default_query=case.query, drain_window=10.0
    )
    server.start()
    results = {}

    def slow_ask():
        results["inflight"] = http_json.post_json(
            server.base_url + "/ask", {"tenant": "a"}
        )

    worker = threading.Thread(target=slow_ask)
    worker.start()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:  # wait until the POST is in flight
        with server._lock:
            if server._inflight > 0:
                break
        time.sleep(0.01)

    closer = threading.Thread(target=server.close)
    closer.start()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:  # wait until the drain has begun
        with server._lock:
            if server._draining:
                break
        time.sleep(0.01)

    # New work is refused with 503 + Retry-After while draining...
    status, headers, body = http_json.post_json(
        server.base_url + "/ask", {"tenant": "a"}
    )
    assert status == 503
    assert "draining" in http_json.body_json(body)["error"]
    assert int(headers["retry-after"]) >= 1
    # ...GETs stay readable and report the drain...
    status, _, body = http_json.get(server.base_url + "/healthz")
    assert status == 503
    assert http_json.body_json(body)["status"] == "draining"

    worker.join(timeout=10.0)
    closer.join(timeout=10.0)
    assert not closer.is_alive()
    # ...and the in-flight request finished normally during the drain.
    status, _, body = results["inflight"]
    assert status == 200
    assert http_json.body_json(body)["answer"] == "Roger Federer"


def test_drain_window_bounds_a_hung_handler():
    case = load_use_case("big_three")
    slow = LatencyLLM(SimulatedLLM(knowledge=case.knowledge), latency=3.0)
    rage = Rage.from_corpus(case.corpus, slow, config=RageConfig(k=case.k))
    server = RageServer(
        rage, tenants=["a"], default_query=case.query, drain_window=0.2
    )
    server.start()
    worker = threading.Thread(
        target=lambda: http_json.post_json(
            server.base_url + "/ask", {"tenant": "a"}, timeout=10.0
        )
    )
    worker.start()
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        with server._lock:
            if server._inflight > 0:
                break
        time.sleep(0.01)
    started = time.monotonic()
    assert server.drain() is False  # the bound expired, not the handler
    assert time.monotonic() - started < 1.0
    server.close()  # still shuts down despite the straggler
    worker.join(timeout=10.0)


def test_drain_window_validation():
    case = load_use_case("big_three")
    rage = Rage.from_corpus(
        case.corpus, SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )
    with pytest.raises(ConfigError):
        RageServer(rage, tenants=["a"], drain_window=0.0)


# ---------------------------------------------------------------------------
# Retrieval: per-source scores in payloads, per-request k, sqlite metrics


def test_ask_payload_carries_retrieval_scores(server):
    status, _, body = http_json.post_json(
        server.base_url + "/ask", {"tenant": "alice"}
    )
    assert status == 200
    payload = http_json.body_json(body)
    retrieval = payload["retrieval"]
    assert retrieval, "ask payload must carry the retrieval ranking"
    assert [entry["rank"] for entry in retrieval] == list(
        range(1, len(retrieval) + 1)
    )
    # Ranks follow the scores the engine actually assigned.
    scores = [entry["score"] for entry in retrieval]
    assert scores == sorted(scores, reverse=True)
    reference = _reference_session(query=None)
    context = reference.rage.retrieve(payload["query"])
    assert [entry["doc_id"] for entry in retrieval] == [
        source.document.doc_id for source in context.sources
    ]


def test_explain_payload_carries_retrieval_scores(server):
    http_json.post_json(server.base_url + "/ask", {"tenant": "alice"})
    status, _, body = http_json.post_json(
        server.base_url + "/explain", {"tenant": "alice"}
    )
    assert status == 200
    payload = http_json.body_json(body)
    assert payload["retrieval"]
    assert {"doc_id", "rank", "score"} == set(payload["retrieval"][0])


def test_ask_honors_per_request_k(server):
    status, _, body = http_json.post_json(
        server.base_url + "/ask", {"tenant": "alice", "k": 2}
    )
    assert status == 200
    payload = http_json.body_json(body)
    assert len(payload["retrieval"]) == 2
    # Byte-identity against the in-process engine at the same depth.
    reference = _reference_session()
    query = payload["query"]
    context = reference.rage.retrieve(query, k=2)
    answer = reference.rage.ask(query, context=context).answer
    assert body == encode_json(ask_payload("alice", query, context, answer))


@pytest.mark.parametrize("bad_k", [0, -3, True, "2", 1.5])
def test_ask_rejects_bad_k(server, bad_k):
    status, _, body = http_json.post_json(
        server.base_url + "/ask", {"tenant": "alice", "k": bad_k}
    )
    assert status == 400
    assert b"k must be a positive integer" in body


def test_metrics_retrieval_block_for_sqlite_backend(tmp_path):
    case = load_use_case("big_three")
    config = RageConfig(
        k=case.k,
        index_dir=str(tmp_path / "ix"),
        retrieval_mode="hybrid",
        fusion="rrf",
    )
    rage = Rage.from_corpus(
        case.corpus, SimulatedLLM(knowledge=case.knowledge), config=config
    )
    with RageServer(rage, tenants=["alice"], default_query=case.query) as srv:
        http_json.post_json(srv.base_url + "/ask", {"tenant": "alice"})
        status, _, body = http_json.get(srv.base_url + "/metrics")
    assert status == 200
    retrieval = http_json.body_json(body)["retrieval"]
    assert retrieval["backend"] == "sqlite"
    assert retrieval["mode"] == "hybrid"
    assert retrieval["fusion"] == "rrf"
    assert retrieval["documents"] == len(case.corpus)
    assert retrieval["path"].endswith("ix/index.db")
    assert retrieval["bytes"] > 0
    counters = retrieval["counters"]
    assert counters["added"] == len(case.corpus)
    assert counters["searches"] >= 1


def test_sqlite_server_answers_match_memory_backend(tmp_path):
    """The persistent index is a storage change, not a ranking change:
    BM25 answers served from SQLite must be byte-identical to the
    in-memory engine's."""
    case = load_use_case("big_three")
    config = RageConfig(k=case.k, index_dir=str(tmp_path / "ix"))
    rage = Rage.from_corpus(
        case.corpus, SimulatedLLM(knowledge=case.knowledge), config=config
    )
    with RageServer(rage, tenants=["alice"], default_query=case.query) as srv:
        status, _, body = http_json.post_json(
            srv.base_url + "/ask", {"tenant": "alice"}
        )
    assert status == 200
    reference = _reference_session()
    query, context, answer = reference.state()
    assert body == encode_json(ask_payload("alice", query, context, answer))
