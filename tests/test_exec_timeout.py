"""Per-call timeout suites: a hung prompt fails *that prompt*.

Before this layer existed nothing in llm/ or exec/ could time out; now
every dispatch rung honors a per-call deadline, the error names the
hung prompt(s), and sibling calls in the batch still complete.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from fakes import SlowPromptLLM

from repro import RageConfig
from repro.errors import ConfigError, GenerationTimeoutError
from repro.exec import AsyncioBackend, SerialBackend, ThreadedBackend, make_backend
from repro.llm.base import (
    abatched_generate,
    batched_generate,
    pooled_generate,
    sequential_generate,
)
from repro.llm.cache import CachingLLM

PROMPTS = ["fast one", "HANG this one", "fast two"]


def _assert_failed_only_the_hung(error: GenerationTimeoutError, model) -> None:
    assert list(error.prompts) == ["HANG this one"]
    # The siblings ran to completion despite the hang.
    assert "fast one" in model.completed
    assert "fast two" in model.completed


def test_sequential_timeout_fails_only_hung_prompt():
    model = SlowPromptLLM(offer_async=False)
    started = time.monotonic()
    with pytest.raises(GenerationTimeoutError) as err:
        sequential_generate(model, PROMPTS, timeout=0.1)
    assert time.monotonic() - started < 2.0  # never waited the 5s hang out
    _assert_failed_only_the_hung(err.value, model)


def test_sequential_no_timeout_preserves_old_behavior():
    model = SlowPromptLLM(hang_seconds=0.01, offer_async=False)
    results = sequential_generate(model, PROMPTS)
    assert [r.answer for r in results] == ["ok"] * 3


def test_pooled_timeout_fails_only_hung_prompt():
    model = SlowPromptLLM(offer_async=False)
    with pytest.raises(GenerationTimeoutError) as err:
        pooled_generate(model, PROMPTS, max_workers=3, timeout=0.1)
    _assert_failed_only_the_hung(err.value, model)


def test_async_rung_timeout_cancels_only_hung_prompt():
    model = SlowPromptLLM()
    with pytest.raises(GenerationTimeoutError) as err:
        asyncio.run(abatched_generate(model, PROMPTS, timeout=0.1))
    assert list(err.value.prompts) == ["HANG this one"]
    assert "fast one" in model.completed and "fast two" in model.completed


def test_batched_generate_sync_entry_times_out_async_model():
    model = SlowPromptLLM()
    with pytest.raises(GenerationTimeoutError) as err:
        batched_generate(model, PROMPTS, timeout=0.1)
    assert list(err.value.prompts) == ["HANG this one"]


def test_native_sync_batch_gets_whole_batch_bound():
    class SlowBatch:
        name = "slow-batch"

        def generate(self, prompt):
            raise AssertionError("batch path expected")

        def generate_batch(self, prompts):
            time.sleep(1.0)
            return []

    with pytest.raises(GenerationTimeoutError) as err:
        batched_generate(SlowBatch(), ["a", "b"], timeout=0.1)
    assert set(err.value.prompts) == {"a", "b"}  # one call, one deadline


@pytest.mark.parametrize(
    "backend_factory",
    [
        lambda: SerialBackend(timeout=0.1),
        lambda: ThreadedBackend(3, timeout=0.1),
        lambda: AsyncioBackend(max_inflight=3, timeout=0.1),
    ],
    ids=["serial", "threaded", "asyncio"],
)
def test_backends_enforce_per_call_timeout(backend_factory):
    backend = backend_factory()
    offer_async = isinstance(backend, AsyncioBackend)
    model = SlowPromptLLM(offer_async=offer_async)
    with pytest.raises(GenerationTimeoutError) as err:
        backend.run(model, PROMPTS)
    assert list(err.value.prompts) == ["HANG this one"]


def test_backends_without_timeout_do_not_deadline():
    model = SlowPromptLLM(hang_seconds=0.02, offer_async=False)
    results = SerialBackend().run(model, PROMPTS)
    assert [r.answer for r in results] == ["ok"] * 3


def test_make_backend_threads_timeout_through_specs():
    assert make_backend("serial", timeout=2.5).timeout == 2.5
    assert make_backend("threaded:4", timeout=2.5).timeout == 2.5
    assert make_backend("asyncio:4", timeout=2.5).timeout == 2.5
    assert make_backend(None, timeout=2.5).timeout == 2.5
    assert make_backend("asyncio").timeout is None
    for spec in ("serial", "threaded:2", "asyncio:2"):
        with pytest.raises(ConfigError):
            make_backend(spec, timeout=0)


def test_caching_llm_forwards_timeout_to_miss_dispatch():
    model = SlowPromptLLM(offer_async=False)
    cached = CachingLLM(model, timeout=0.1)
    with pytest.raises(GenerationTimeoutError):
        cached.generate("HANG me")
    # Batch misses are deadlined too; hits never are.
    cached.generate("warm")
    model.hang_marker = "warm-is-cached-so-never-matches"
    assert cached.generate("warm").answer == "ok"
    with pytest.raises(ConfigError):
        CachingLLM(model, timeout=0)


def test_caching_llm_batch_timeout_names_hung_prompt():
    model = SlowPromptLLM()
    cached = CachingLLM(model, timeout=0.1)
    with pytest.raises(GenerationTimeoutError) as err:
        cached.generate_batch(PROMPTS)
    assert list(err.value.prompts) == ["HANG this one"]


def test_config_request_timeout_reaches_backend():
    config = RageConfig(backend="asyncio:2", request_timeout=1.5)
    backend = make_backend(
        config.backend, batch_workers=config.batch_workers,
        timeout=config.request_timeout,
    )
    assert backend.timeout == 1.5
    with pytest.raises(ConfigError):
        RageConfig(request_timeout=-2)


def test_engine_enforces_deadline_at_one_layer_only(big_three):
    """With the cache on, the deadline lives in the cache wrapper's
    per-call miss dispatch; the backend must NOT re-apply it as a
    whole-batch bound over the wrapper's batch entry point."""
    from repro import Rage
    from repro.llm.cache import CachingLLM

    rage = Rage.from_corpus(
        big_three.corpus,
        SlowPromptLLM(hang_seconds=0.0, offer_async=False),
        config=RageConfig(k=big_three.k, request_timeout=0.2),
    )
    assert isinstance(rage.llm, CachingLLM)
    assert rage.llm.timeout == 0.2
    assert rage.backend.timeout is None
    # cache=False: the backend is the innermost layer and enforces it.
    uncached = Rage.from_corpus(
        big_three.corpus,
        SlowPromptLLM(hang_seconds=0.0, offer_async=False),
        config=RageConfig(k=big_three.k, request_timeout=0.2, cache=False),
    )
    assert uncached.backend.timeout == 0.2


def test_healthy_batch_slower_than_deadline_survives(big_three):
    """Finding-1 regression: a batch whose total wall-clock exceeds
    the per-call deadline — while every individual call is well under
    it — must complete, not die wholesale."""
    from repro import Rage

    model = SlowPromptLLM(
        hang_marker="never-matches", hang_seconds=0.0, offer_async=False
    )
    real_generate = model.generate

    def slow_generate(prompt):
        time.sleep(0.06)  # healthy, but 8 calls exceed the 0.15s deadline
        return real_generate(prompt)

    model.generate = slow_generate
    rage = Rage.from_corpus(
        big_three.corpus,
        model,
        config=RageConfig(k=big_three.k, request_timeout=0.15),
    )
    context = rage.retrieve(big_three.query)
    evaluator = rage._evaluator(context)
    ids = context.doc_ids()
    orderings = [ids[: n + 1] for n in range(len(ids))] * 2
    evaluations = evaluator.evaluate_many(orderings)
    assert len(evaluations) == len(orderings)


def test_asyncio_backend_times_out_hung_sync_batch():
    """Finding-2 regression: a hung native sync batch under the
    asyncio backend must raise within the deadline — not block the
    loop's shutdown forever."""

    class HungBatch:
        name = "hung-batch"

        def generate(self, prompt):
            raise AssertionError("batch path expected")

        def generate_batch(self, prompts):
            time.sleep(30.0)
            return []

    backend = AsyncioBackend(max_inflight=2, timeout=0.2)
    started = time.monotonic()
    with pytest.raises(GenerationTimeoutError) as err:
        backend.run(HungBatch(), ["a", "b"])
    assert time.monotonic() - started < 5.0
    assert set(err.value.prompts) == {"a", "b"}
