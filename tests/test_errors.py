"""Error hierarchy tests: one catch-all base, specific subclasses."""

import pytest

from repro import RageError
from repro.errors import (
    AssignmentError,
    BatchContractError,
    ConfigError,
    DatasetError,
    DocumentError,
    EmptyIndexError,
    GenerationError,
    PerturbationError,
    PromptError,
    RetrievalError,
    SearchBudgetError,
    StoreDecodeError,
    UnknownDocumentError,
    ValidationError,
)

ALL_ERRORS = [
    ConfigError,
    RetrievalError,
    EmptyIndexError,
    UnknownDocumentError,
    PromptError,
    GenerationError,
    SearchBudgetError,
    PerturbationError,
    AssignmentError,
    DatasetError,
    ValidationError,
    DocumentError,
    BatchContractError,
    StoreDecodeError,
]


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_all_derive_from_rage_error(error_cls):
    assert issubclass(error_cls, RageError)
    assert issubclass(error_cls, Exception)


def test_retrieval_specializations():
    assert issubclass(EmptyIndexError, RetrievalError)
    assert issubclass(UnknownDocumentError, RetrievalError)
    assert issubclass(DocumentError, RetrievalError)


def test_taxonomy_migrations_keep_builtin_compatibility():
    """Classes that replaced bare-builtin raises dual-inherit the
    builtin, so pre-taxonomy `except ValueError`/`except RuntimeError`
    callers keep catching them."""
    assert issubclass(ValidationError, ValueError)
    assert issubclass(DocumentError, ValueError)
    assert issubclass(StoreDecodeError, ValueError)
    assert issubclass(BatchContractError, RuntimeError)
    assert issubclass(BatchContractError, GenerationError)


def test_migrated_raise_sites_use_taxonomy_classes():
    """Regression for the error-taxonomy lint findings: the library
    paths that used to raise bare builtins now raise repro.errors
    classes (catchable as RageError *and* as the old builtin)."""
    from repro.retrieval.document import Corpus, Document
    from repro.textproc.tokenizer import ngrams

    with pytest.raises(DocumentError):
        Document(doc_id="", text="x")
    with pytest.raises(ValueError):  # old-style callers still work
        Document(doc_id="d", text="")
    corpus = Corpus([Document(doc_id="d", text="x")])
    with pytest.raises(DocumentError):
        corpus.add(Document(doc_id="d", text="y"))
    with pytest.raises(ValidationError):
        list(ngrams(["a", "b"], 0))


def test_batch_misalignment_raises_taxonomy_class():
    from repro.llm.base import _check_alignment
    from repro.llm.simulated import SimulatedLLM

    model = SimulatedLLM()
    with pytest.raises(BatchContractError):
        _check_alignment(model, ["p1", "p2"], [])
    with pytest.raises(RuntimeError):  # pre-taxonomy callers
        _check_alignment(model, ["p1", "p2"], [])


def test_store_decode_mismatch_raises_taxonomy_class():
    from repro.llm.store import decode_result

    with pytest.raises(StoreDecodeError):
        decode_result({"version": -1})
    with pytest.raises(ValueError):  # the store's corruption-as-miss path
        decode_result({"version": -1})


def test_single_catch_covers_library_failures():
    """A caller catching RageError intercepts every deliberate failure
    path exercised here."""
    from repro.attention import position_weights
    from repro.datasets import load_use_case
    from repro.retrieval import InvertedIndex, Searcher

    failing_calls = [
        lambda: Searcher(InvertedIndex()).search("q"),
        lambda: load_use_case("missing"),
        lambda: position_weights("uniform", 0),
    ]
    for call in failing_calls:
        with pytest.raises(RageError):
            call()


def test_errors_carry_messages():
    try:
        from repro.datasets import load_use_case

        load_use_case("nope")
    except DatasetError as error:
        assert "nope" in str(error)
        assert "big_three" in str(error)  # lists what is available
    else:  # pragma: no cover
        pytest.fail("expected DatasetError")
