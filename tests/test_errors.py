"""Error hierarchy tests: one catch-all base, specific subclasses."""

import pytest

from repro import RageError
from repro.errors import (
    AssignmentError,
    ConfigError,
    DatasetError,
    EmptyIndexError,
    GenerationError,
    PerturbationError,
    PromptError,
    RetrievalError,
    SearchBudgetError,
    UnknownDocumentError,
)

ALL_ERRORS = [
    ConfigError,
    RetrievalError,
    EmptyIndexError,
    UnknownDocumentError,
    PromptError,
    GenerationError,
    SearchBudgetError,
    PerturbationError,
    AssignmentError,
    DatasetError,
]


@pytest.mark.parametrize("error_cls", ALL_ERRORS)
def test_all_derive_from_rage_error(error_cls):
    assert issubclass(error_cls, RageError)
    assert issubclass(error_cls, Exception)


def test_retrieval_specializations():
    assert issubclass(EmptyIndexError, RetrievalError)
    assert issubclass(UnknownDocumentError, RetrievalError)


def test_single_catch_covers_library_failures():
    """A caller catching RageError intercepts every deliberate failure
    path exercised here."""
    from repro.attention import position_weights
    from repro.datasets import load_use_case
    from repro.retrieval import InvertedIndex, Searcher

    failing_calls = [
        lambda: Searcher(InvertedIndex()).search("q"),
        lambda: load_use_case("missing"),
        lambda: position_weights("uniform", 0),
    ]
    for call in failing_calls:
        with pytest.raises(RageError):
            call()


def test_errors_carry_messages():
    try:
        from repro.datasets import load_use_case

        load_use_case("nope")
    except DatasetError as error:
        assert "nope" in str(error)
        assert "big_three" in str(error)  # lists what is available
    else:  # pragma: no cover
        pytest.fail("expected DatasetError")
