"""Top-k searcher tests."""

import pytest

from repro.errors import EmptyIndexError
from repro.retrieval import InvertedIndex, Searcher, TfIdfScorer


def test_search_ranks_best_first(tiny_searcher):
    result = tiny_searcher.search("quick brown fox", k=4)
    assert result.doc_ids()[0] == "d4"  # three 'quick' + foxes, short doc
    assert len(result) >= 3


def test_search_k_limits_results(tiny_searcher):
    result = tiny_searcher.search("quick fox", k=2)
    assert len(result) == 2


def test_search_scores_descending(tiny_searcher):
    result = tiny_searcher.search("quick brown fox dog", k=4)
    scores = result.scores()
    assert scores == sorted(scores, reverse=True)


def test_search_ranks_are_one_based(tiny_searcher):
    result = tiny_searcher.search("fox", k=3)
    assert [s.rank for s in result.sources] == list(range(1, len(result) + 1))


def test_search_no_match(tiny_searcher):
    result = tiny_searcher.search("zebra xylophone", k=3)
    assert len(result) == 0
    assert result.documents() == []


def test_search_empty_index():
    with pytest.raises(EmptyIndexError):
        Searcher(InvertedIndex()).search("anything")


def test_search_all(tiny_searcher):
    result = tiny_searcher.search_all("quick fox dog cats")
    assert len(result) == 4


def test_retrieved_source_shortcuts(tiny_searcher):
    result = tiny_searcher.search("fox", k=1)
    source = result.sources[0]
    assert source.doc_id == source.document.doc_id
    assert result.doc_ids() == [source.doc_id]


def test_search_with_tfidf(tiny_index):
    searcher = Searcher(tiny_index, scorer=TfIdfScorer())
    result = searcher.search("quick", k=4)
    assert result.doc_ids()[0] == "d4"


def test_deterministic_tiebreak_order(tiny_searcher):
    """Equal-scoring docs are ordered by doc_id (the use-case datasets
    rely on this for their chronological contexts)."""
    result = tiny_searcher.search("harmony cats", k=4)
    # Only d3 matches; sanity that deterministic path executes.
    assert result.doc_ids() == ["d3"]
