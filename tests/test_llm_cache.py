"""Caching LLM wrapper tests."""

from repro.llm import CachingLLM, GenerationResult, PromptBuilder, SimulatedLLM


class CountingModel:
    """Stub model that counts real generate calls."""

    def __init__(self):
        self.calls = 0

    @property
    def name(self):
        return "counting-stub"

    def generate(self, prompt):
        self.calls += 1
        return GenerationResult(answer=f"answer-{len(prompt) % 7}", prompt=prompt)


def test_cache_hit_avoids_inner_call():
    inner = CountingModel()
    cached = CachingLLM(inner)
    first = cached.generate("prompt one")
    second = cached.generate("prompt one")
    assert inner.calls == 1
    assert first is second
    assert cached.stats.hits == 1
    assert cached.stats.misses == 1
    assert cached.stats.hit_rate == 0.5


def test_different_prompts_miss():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    cached.generate("b")
    assert inner.calls == 2
    assert cached.stats.misses == 2


def test_clear_resets_entries_not_stats():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    cached.clear()
    cached.generate("a")
    assert inner.calls == 2
    assert cached.stats.misses == 2
    assert len(cached) == 1


def test_fifo_eviction():
    inner = CountingModel()
    cached = CachingLLM(inner, max_entries=2)
    cached.generate("a")
    cached.generate("b")
    cached.generate("c")  # evicts "a"
    assert len(cached) == 2
    cached.generate("a")  # must re-generate
    assert inner.calls == 4


def test_name_and_inner():
    inner = CountingModel()
    cached = CachingLLM(inner)
    assert "counting-stub" in cached.name
    assert cached.inner is inner


def test_stats_empty():
    cached = CachingLLM(CountingModel())
    assert cached.stats.calls == 0
    assert cached.stats.hit_rate == 0.0


def test_cache_wraps_simulated_llm_transparently():
    builder = PromptBuilder()
    raw = SimulatedLLM()
    cached = CachingLLM(SimulatedLLM())
    prompt = builder.build(
        "Who won the pie contest trophy?",
        ["Sam Baker won the pie contest trophy in 2015."],
    )
    assert cached.generate(prompt).answer == raw.generate(prompt).answer
