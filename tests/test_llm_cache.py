"""Caching LLM wrapper tests."""

import pytest

from repro.errors import ConfigError
from repro.llm import CachingLLM, GenerationResult, PromptBuilder, SimulatedLLM


class CountingModel:
    """Stub model that counts real generate calls."""

    def __init__(self):
        self.calls = 0

    @property
    def name(self):
        return "counting-stub"

    def generate(self, prompt):
        self.calls += 1
        return GenerationResult(answer=f"answer-{len(prompt) % 7}", prompt=prompt)


def test_cache_hit_avoids_inner_call():
    inner = CountingModel()
    cached = CachingLLM(inner)
    first = cached.generate("prompt one")
    second = cached.generate("prompt one")
    assert inner.calls == 1
    assert first is second
    assert cached.stats.hits == 1
    assert cached.stats.misses == 1
    assert cached.stats.hit_rate == 0.5


def test_different_prompts_miss():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    cached.generate("b")
    assert inner.calls == 2
    assert cached.stats.misses == 2


def test_clear_resets_entries_not_stats():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    cached.clear()
    cached.generate("a")
    assert inner.calls == 2
    assert cached.stats.misses == 2
    assert len(cached) == 1


def test_fifo_eviction():
    inner = CountingModel()
    cached = CachingLLM(inner, max_entries=2)
    cached.generate("a")
    cached.generate("b")
    cached.generate("c")  # evicts "a"
    assert len(cached) == 2
    cached.generate("a")  # must re-generate
    assert inner.calls == 4


def test_name_and_inner():
    inner = CountingModel()
    cached = CachingLLM(inner)
    assert "counting-stub" in cached.name
    assert cached.inner is inner


def test_stats_empty():
    cached = CachingLLM(CountingModel())
    assert cached.stats.calls == 0
    assert cached.stats.hit_rate == 0.0


def test_invalid_max_entries_rejected():
    """Regression: max_entries=0 used to crash the first eviction with
    StopIteration (next(iter({})) on an empty cache) instead of failing
    fast at construction."""
    with pytest.raises(ConfigError):
        CachingLLM(CountingModel(), max_entries=0)
    with pytest.raises(ConfigError):
        CachingLLM(CountingModel(), max_entries=-3)


def test_eviction_survives_clear_between_inserts():
    """An externally emptied cache must not break the eviction path."""
    inner = CountingModel()
    cached = CachingLLM(inner, max_entries=1)
    cached.generate("a")
    cached.clear()
    cached.generate("b")  # cache is empty but at the size boundary
    assert len(cached) == 1
    cached.generate("c")  # normal eviction of "b"
    assert len(cached) == 1


def test_generate_batch_partitions_hits_and_misses():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    results = cached.generate_batch(["a", "b", "c", "b"])
    assert [r.prompt for r in results] == ["a", "b", "c", "b"]
    # only the two distinct misses reached the model
    assert inner.calls == 3  # "a" earlier + "b", "c" now
    assert cached.stats.batches == 1
    assert cached.stats.batched_prompts == 4
    assert cached.stats.batched_misses == 2
    # "a" hit, "b" miss, "c" miss, duplicate "b" served from cache = hit
    assert cached.stats.hits == 2
    assert cached.stats.misses == 3  # 1 sequential + 2 batched


def test_generate_batch_second_pass_all_hits():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate_batch(["a", "b"])
    calls = inner.calls
    results = cached.generate_batch(["a", "b"])
    assert inner.calls == calls
    assert [r.prompt for r in results] == ["a", "b"]


def test_generate_batch_bounded_cache_still_aligned():
    """Eviction during a batch larger than the cache must not lose
    results for the batch itself."""
    inner = CountingModel()
    cached = CachingLLM(inner, max_entries=2)
    results = cached.generate_batch(["a", "b", "c", "d", "a"])
    assert [r.prompt for r in results] == ["a", "b", "c", "d", "a"]
    assert len(cached) == 2  # only the two newest entries survive


def test_generate_batch_uses_inner_native_batch():
    class BatchingModel(CountingModel):
        def __init__(self):
            super().__init__()
            self.batch_calls = 0

        def generate_batch(self, prompts):
            self.batch_calls += 1
            self.calls += len(prompts)
            return [
                GenerationResult(answer="from-batch", prompt=p) for p in prompts
            ]

    inner = BatchingModel()
    cached = CachingLLM(inner)
    cached.generate_batch(["x", "y", "z"])
    assert inner.batch_calls == 1


def test_generate_batch_forwards_thread_pool_to_non_batch_backend():
    """Regression: the cache used to swallow batch_workers, so a
    non-batchable backend behind the (default) cache never saw the
    thread pool."""
    import threading

    class ThreadTrackingModel(CountingModel):
        def __init__(self):
            super().__init__()
            self.threads = set()

        def generate(self, prompt):
            self.threads.add(threading.get_ident())
            return super().generate(prompt)

    inner = ThreadTrackingModel()
    cached = CachingLLM(inner, batch_workers=3)
    results = cached.generate_batch([f"prompt-{i}" for i in range(6)])
    assert len(results) == 6
    assert inner.calls == 6
    assert len(inner.threads) >= 1  # pool ran (thread reuse is scheduler's call)
    with pytest.raises(ConfigError):
        CachingLLM(CountingModel(), batch_workers=0)


def test_cache_wraps_simulated_llm_transparently():
    builder = PromptBuilder()
    raw = SimulatedLLM()
    cached = CachingLLM(SimulatedLLM())
    prompt = builder.build(
        "Who won the pie contest trophy?",
        ["Sam Baker won the pie contest trophy in 2015."],
    )
    assert cached.generate(prompt).answer == raw.generate(prompt).answer
