"""Caching LLM wrapper tests."""

import pytest

from repro.errors import ConfigError
from repro.llm import CachingLLM, GenerationResult, PromptBuilder, SimulatedLLM


class CountingModel:
    """Stub model that counts real generate calls."""

    def __init__(self):
        self.calls = 0

    @property
    def name(self):
        return "counting-stub"

    def generate(self, prompt):
        self.calls += 1
        return GenerationResult(answer=f"answer-{len(prompt) % 7}", prompt=prompt)


def test_cache_hit_avoids_inner_call():
    inner = CountingModel()
    cached = CachingLLM(inner)
    first = cached.generate("prompt one")
    second = cached.generate("prompt one")
    assert inner.calls == 1
    assert first is second
    assert cached.stats.hits == 1
    assert cached.stats.misses == 1
    assert cached.stats.hit_rate == 0.5


def test_different_prompts_miss():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    cached.generate("b")
    assert inner.calls == 2
    assert cached.stats.misses == 2


def test_clear_resets_entries_not_stats():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    cached.clear()
    cached.generate("a")
    assert inner.calls == 2
    assert cached.stats.misses == 2
    assert len(cached) == 1


def test_fifo_eviction():
    inner = CountingModel()
    cached = CachingLLM(inner, max_entries=2)
    cached.generate("a")
    cached.generate("b")
    cached.generate("c")  # evicts "a"
    assert len(cached) == 2
    cached.generate("a")  # must re-generate
    assert inner.calls == 4


def test_name_and_inner():
    inner = CountingModel()
    cached = CachingLLM(inner)
    assert "counting-stub" in cached.name
    assert cached.inner is inner


def test_stats_empty():
    cached = CachingLLM(CountingModel())
    assert cached.stats.calls == 0
    assert cached.stats.hit_rate == 0.0


def test_invalid_max_entries_rejected():
    """Regression: max_entries=0 used to crash the first eviction with
    StopIteration (next(iter({})) on an empty cache) instead of failing
    fast at construction."""
    with pytest.raises(ConfigError):
        CachingLLM(CountingModel(), max_entries=0)
    with pytest.raises(ConfigError):
        CachingLLM(CountingModel(), max_entries=-3)


def test_eviction_survives_clear_between_inserts():
    """An externally emptied cache must not break the eviction path."""
    inner = CountingModel()
    cached = CachingLLM(inner, max_entries=1)
    cached.generate("a")
    cached.clear()
    cached.generate("b")  # cache is empty but at the size boundary
    assert len(cached) == 1
    cached.generate("c")  # normal eviction of "b"
    assert len(cached) == 1


def test_generate_batch_partitions_hits_and_misses():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate("a")
    results = cached.generate_batch(["a", "b", "c", "b"])
    assert [r.prompt for r in results] == ["a", "b", "c", "b"]
    # only the two distinct misses reached the model
    assert inner.calls == 3  # "a" earlier + "b", "c" now
    assert cached.stats.batches == 1
    assert cached.stats.batched_prompts == 4
    assert cached.stats.batched_misses == 2
    # "a" hit, "b" miss, "c" miss, duplicate "b" served from cache = hit
    assert cached.stats.hits == 2
    assert cached.stats.misses == 3  # 1 sequential + 2 batched


def test_generate_batch_second_pass_all_hits():
    inner = CountingModel()
    cached = CachingLLM(inner)
    cached.generate_batch(["a", "b"])
    calls = inner.calls
    results = cached.generate_batch(["a", "b"])
    assert inner.calls == calls
    assert [r.prompt for r in results] == ["a", "b"]


def test_generate_batch_bounded_cache_still_aligned():
    """Eviction during a batch larger than the cache must not lose
    results for the batch itself."""
    inner = CountingModel()
    cached = CachingLLM(inner, max_entries=2)
    results = cached.generate_batch(["a", "b", "c", "d", "a"])
    assert [r.prompt for r in results] == ["a", "b", "c", "d", "a"]
    assert len(cached) == 2  # only the two newest entries survive


def test_generate_batch_uses_inner_native_batch():
    class BatchingModel(CountingModel):
        def __init__(self):
            super().__init__()
            self.batch_calls = 0

        def generate_batch(self, prompts):
            self.batch_calls += 1
            self.calls += len(prompts)
            return [
                GenerationResult(answer="from-batch", prompt=p) for p in prompts
            ]

    inner = BatchingModel()
    cached = CachingLLM(inner)
    cached.generate_batch(["x", "y", "z"])
    assert inner.batch_calls == 1


def test_generate_batch_forwards_thread_pool_to_non_batch_backend():
    """Regression: the cache used to swallow batch_workers, so a
    non-batchable backend behind the (default) cache never saw the
    thread pool."""
    import threading

    class ThreadTrackingModel(CountingModel):
        def __init__(self):
            super().__init__()
            self.threads = set()

        def generate(self, prompt):
            self.threads.add(threading.get_ident())
            return super().generate(prompt)

    inner = ThreadTrackingModel()
    cached = CachingLLM(inner, batch_workers=3)
    results = cached.generate_batch([f"prompt-{i}" for i in range(6)])
    assert len(results) == 6
    assert inner.calls == 6
    assert len(inner.threads) >= 1  # pool ran (thread reuse is scheduler's call)
    with pytest.raises(ConfigError):
        CachingLLM(CountingModel(), batch_workers=0)


def test_cache_wraps_simulated_llm_transparently():
    builder = PromptBuilder()
    raw = SimulatedLLM()
    cached = CachingLLM(SimulatedLLM())
    prompt = builder.build(
        "Who won the pie contest trophy?",
        ["Sam Baker won the pie contest trophy in 2015."],
    )
    assert cached.generate(prompt).answer == raw.generate(prompt).answer


# -- the persistent second tier -------------------------------------------


def test_disk_tier_write_through_and_promotion(tmp_path):
    from repro.llm import PromptStore

    store = PromptStore(tmp_path)
    inner = CountingModel()
    cached = CachingLLM(inner, store=store)
    result = cached.generate("prompt one")
    assert inner.calls == 1
    assert store.stats.writes == 1  # write-through on the miss

    # A fresh wrapper on the same store: the disk answers, the model
    # is never touched, and the entry is promoted into memory.
    revived = CachingLLM(CountingModel(), store=store)
    warm = revived.generate("prompt one")
    assert warm.answer == result.answer
    assert revived.inner.calls == 0
    assert revived.stats.disk_hits == 1
    assert revived.stats.hits == 1
    assert len(revived) == 1
    # Second lookup is a pure memory hit — no further disk traffic.
    lookups_before = store.stats.lookups
    revived.generate("prompt one")
    assert store.stats.lookups == lookups_before
    assert revived.stats.disk_hits == 1


def test_concurrent_disk_hits_promote_once(tmp_path):
    """Two simultaneous disk hits on one key install one memory entry.

    Regression: both readers used to decode *and* both promote —
    double-counting ``disk_hits`` and re-inserting over the winner.
    The rendezvous store forces the historical interleaving: both
    threads finish decoding before either promotes.
    """
    import threading

    from repro.llm import PromptStore

    class RendezvousStore(PromptStore):
        def __init__(self, root):
            super().__init__(root)
            self.rendezvous = threading.Barrier(2, timeout=10.0)

        def get(self, model_name, prompt, params=None):
            result = super().get(model_name, prompt, params)
            if result is not None:
                self.rendezvous.wait()
            return result

    store = RendezvousStore(tmp_path)
    seeder = CachingLLM(CountingModel(), store=store)
    expected = seeder.generate("hot prompt").answer

    cold = CachingLLM(CountingModel(), store=store)
    results = [None, None]

    def read(i):
        results[i] = cold.generate("hot prompt")

    threads = [threading.Thread(target=read, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    assert [r.answer for r in results] == [expected, expected]
    assert cold.inner.calls == 0
    assert cold.stats.disk_hits == 1  # one promotion, not two
    assert cold.stats.hits == 2  # the loser is charged as a memory hit
    assert len(cold) == 1


def test_disk_tier_serves_batches(tmp_path):
    from repro.llm import PromptStore

    store = PromptStore(tmp_path)
    first = CachingLLM(CountingModel(), store=store)
    prompts = [f"prompt {i}" for i in range(4)]
    expected = [r.answer for r in first.generate_batch(prompts)]
    assert first.inner.calls == 4

    second = CachingLLM(CountingModel(), store=store)
    answers = [r.answer for r in second.generate_batch(prompts + prompts[:2])]
    assert answers[:4] == expected
    assert second.inner.calls == 0
    assert second.stats.disk_hits == 4  # distinct prompts hit disk once each
    assert second.stats.misses == 0


def test_disk_tier_keys_on_inner_model_name(tmp_path):
    from repro.llm import GenerationResult, PromptStore

    class NamedModel(CountingModel):
        def __init__(self, name):
            super().__init__()
            self._name = name

        @property
        def name(self):
            return self._name

        def generate(self, prompt):
            self.calls += 1
            return GenerationResult(answer=self._name, prompt=prompt)

    store = PromptStore(tmp_path)
    CachingLLM(NamedModel("model-a"), store=store).generate("p")
    other = CachingLLM(NamedModel("model-b"), store=store)
    assert other.generate("p").answer == "model-b"  # no cross-model bleed
    assert other.inner.calls == 1


def test_no_store_keeps_memory_only_behavior():
    cached = CachingLLM(CountingModel())
    cached.generate("p")
    assert cached.store is None
    assert cached.stats.disk_hits == 0


def test_invalid_max_inflight_rejected():
    from repro.errors import ConfigError as CE

    with pytest.raises(CE):
        CachingLLM(CountingModel(), max_inflight=0)


def test_disk_tier_splits_on_cache_params(tmp_path):
    """Models whose `name` hides behavioural knobs must not share
    persistent entries: cache_params is part of the content address."""
    from repro.llm import PromptStore, SimulatedLLM
    from repro.llm.simulated import SimulatedLLMConfig

    store = PromptStore(tmp_path)
    mild = SimulatedLLM(config=SimulatedLLMConfig(recency_decay=0.8))
    sharp = SimulatedLLM(config=SimulatedLLMConfig(recency_decay=0.2))
    assert mild.name == sharp.name  # the name alone cannot tell them apart
    assert mild.cache_params != sharp.cache_params

    prompt = (
        "Answer the question using only the numbered sources.\n\n"
        "Sources:\n1. Roger Federer is widely considered the best player.\n\n"
        "Question: Who is the best tennis player?\n\nAnswer:"
    )
    CachingLLM(mild, store=store).generate(prompt)
    other = CachingLLM(sharp, store=store)
    other.generate(prompt)
    assert other.stats.disk_hits == 0  # no cross-configuration bleed
    assert store.entry_count == 2


def test_scripted_cache_params_track_recorded_answers():
    from repro.llm import ScriptedLLM

    llm = ScriptedLLM(script={("a",): "one"})
    before = llm.cache_params
    llm.record(["a"], "two")
    assert llm.cache_params != before  # stale identity would serve stale answers


def test_transformers_cache_params_include_generation_settings():
    from repro.llm.transformers_adapter import TransformersLLM

    def loader(model_name, device):
        return object(), object()

    short = TransformersLLM(max_new_tokens=8, loader=loader)
    long = TransformersLLM(max_new_tokens=64, loader=loader)
    assert short.cache_params != long.cache_params
