"""CLI tests (argument parsing and command output)."""

import pytest

from repro.app.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "big_three" in out
    assert "us_open" in out
    assert "player_of_the_year" in out


def test_ask(capsys):
    assert main(["ask", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "Roger Federer" in out
    assert "bigthree-1-match-wins" in out


def test_ask_custom_query(capsys):
    code = main(
        ["ask", "--use-case", "big_three", "--query",
         "Who is the best tennis player among the Big Three?"]
    )
    assert code == 0
    assert "Answer:" in capsys.readouterr().out


def test_insights_combinations(capsys):
    assert main(["insights", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "Answer distribution" in out
    assert "Roger Federer" in out


def test_insights_permutations_sampled(capsys):
    code = main(
        ["insights", "--use-case", "us_open", "--mode", "permutations",
         "--sample", "12"]
    )
    assert code == 0
    assert "Permutation insights" in capsys.readouterr().out


def test_counterfactual_combination(capsys):
    assert main(["counterfactual", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "Top-down counterfactual" in out


def test_counterfactual_bottom_up(capsys):
    code = main(
        ["counterfactual", "--use-case", "big_three", "--direction", "bottom_up"]
    )
    assert code == 0
    assert "Bottom-up counterfactual" in capsys.readouterr().out


def test_counterfactual_permutation(capsys):
    code = main(["counterfactual", "--use-case", "us_open", "--kind", "permutation"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Iga Swiatek" in out


def test_counterfactual_with_target(capsys):
    code = main(
        ["counterfactual", "--use-case", "big_three", "--target", "Rafael Nadal"]
    )
    assert code == 0
    assert "Rafael Nadal" in capsys.readouterr().out


def test_optimal(capsys):
    assert main(["optimal", "--use-case", "big_three", "-s", "3"]) == 0
    out = capsys.readouterr().out
    assert "rank" in out


def test_report_with_html(tmp_path, capsys):
    path = tmp_path / "out.html"
    code = main(
        ["report", "--use-case", "big_three", "--html", str(path)]
    )
    assert code == 0
    assert path.exists()
    assert "HTML report written" in capsys.readouterr().out


def test_report_with_markdown(tmp_path, capsys):
    path = tmp_path / "out.md"
    code = main(["report", "--use-case", "big_three", "--markdown", str(path)])
    assert code == 0
    content = path.read_text(encoding="utf-8")
    assert content.startswith("# RAGE explanation report")
    assert "Markdown report written" in capsys.readouterr().out


def test_report_large_use_case_sampled(capsys):
    code = main(["report", "--use-case", "player_of_the_year", "--sample", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Answer:   5" in out


def test_invalid_use_case_rejected():
    with pytest.raises(SystemExit):
        main(["ask", "--use-case", "bogus"])


def test_k_override(capsys):
    assert main(["ask", "--use-case", "big_three", "--k", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("bigthree-") == 2


def test_report_stats_prints_plan_line(capsys):
    code = main(["report", "--use-case", "big_three", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Evaluation stats:" in out
    assert "Plan:" in out
    assert "implied" in out and "pruned" in out and "dispatched" in out


def test_no_prune_flag_round_trips_through_config(capsys, monkeypatch):
    from repro.app import cli as cli_module

    captured = {}
    original = cli_module.RageSession.for_use_case

    def spy(case, config=None, llm=None):
        captured["config"] = config
        return original(case, config=config, llm=llm)

    monkeypatch.setattr(cli_module.RageSession, "for_use_case", staticmethod(spy))
    assert main(["report", "--use-case", "big_three", "--no-prune", "--stats"]) == 0
    assert captured["config"].plan_pruning is False
    out = capsys.readouterr().out
    assert "0 implied, 0 pruned" in out

    assert main(["report", "--use-case", "big_three"]) == 0
    assert captured["config"].plan_pruning is True


def test_no_prune_accepted_by_other_commands(capsys):
    assert main(["ask", "--use-case", "big_three", "--no-prune"]) == 0
    assert "Answer:" in capsys.readouterr().out
