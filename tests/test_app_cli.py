"""CLI tests (argument parsing and command output)."""

import pytest

from repro.app.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "big_three" in out
    assert "us_open" in out
    assert "player_of_the_year" in out


def test_ask(capsys):
    assert main(["ask", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "Roger Federer" in out
    assert "bigthree-1-match-wins" in out


def test_ask_custom_query(capsys):
    code = main(
        ["ask", "--use-case", "big_three", "--query",
         "Who is the best tennis player among the Big Three?"]
    )
    assert code == 0
    assert "Answer:" in capsys.readouterr().out


def test_insights_combinations(capsys):
    assert main(["insights", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "Answer distribution" in out
    assert "Roger Federer" in out


def test_insights_permutations_sampled(capsys):
    code = main(
        ["insights", "--use-case", "us_open", "--mode", "permutations",
         "--sample", "12"]
    )
    assert code == 0
    assert "Permutation insights" in capsys.readouterr().out


def test_counterfactual_combination(capsys):
    assert main(["counterfactual", "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "Top-down counterfactual" in out


def test_counterfactual_bottom_up(capsys):
    code = main(
        ["counterfactual", "--use-case", "big_three", "--direction", "bottom_up"]
    )
    assert code == 0
    assert "Bottom-up counterfactual" in capsys.readouterr().out


def test_counterfactual_permutation(capsys):
    code = main(["counterfactual", "--use-case", "us_open", "--kind", "permutation"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Iga Swiatek" in out


def test_counterfactual_with_target(capsys):
    code = main(
        ["counterfactual", "--use-case", "big_three", "--target", "Rafael Nadal"]
    )
    assert code == 0
    assert "Rafael Nadal" in capsys.readouterr().out


def test_optimal(capsys):
    assert main(["optimal", "--use-case", "big_three", "-s", "3"]) == 0
    out = capsys.readouterr().out
    assert "rank" in out


def test_report_with_html(tmp_path, capsys):
    path = tmp_path / "out.html"
    code = main(
        ["report", "--use-case", "big_three", "--html", str(path)]
    )
    assert code == 0
    assert path.exists()
    assert "HTML report written" in capsys.readouterr().out


def test_report_with_markdown(tmp_path, capsys):
    path = tmp_path / "out.md"
    code = main(["report", "--use-case", "big_three", "--markdown", str(path)])
    assert code == 0
    content = path.read_text(encoding="utf-8")
    assert content.startswith("# RAGE explanation report")
    assert "Markdown report written" in capsys.readouterr().out


def test_report_large_use_case_sampled(capsys):
    code = main(["report", "--use-case", "player_of_the_year", "--sample", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Answer:   5" in out


def test_invalid_use_case_rejected():
    with pytest.raises(SystemExit):
        main(["ask", "--use-case", "bogus"])


def test_k_override(capsys):
    assert main(["ask", "--use-case", "big_three", "--k", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("bigthree-") == 2


def test_report_stats_prints_plan_line(capsys):
    code = main(["report", "--use-case", "big_three", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Evaluation stats:" in out
    assert "Plan:" in out
    assert "implied" in out and "pruned" in out and "dispatched" in out


def test_no_prune_flag_round_trips_through_config(capsys, monkeypatch):
    from repro.app import cli as cli_module

    captured = {}
    original = cli_module.RageSession.for_use_case

    def spy(case, config=None, llm=None):
        captured["config"] = config
        return original(case, config=config, llm=llm)

    monkeypatch.setattr(cli_module.RageSession, "for_use_case", staticmethod(spy))
    assert main(["report", "--use-case", "big_three", "--no-prune", "--stats"]) == 0
    assert captured["config"].plan_pruning is False
    out = capsys.readouterr().out
    assert "0 implied, 0 pruned" in out

    assert main(["report", "--use-case", "big_three"]) == 0
    assert captured["config"].plan_pruning is True


def test_no_prune_accepted_by_other_commands(capsys):
    assert main(["ask", "--use-case", "big_three", "--no-prune"]) == 0
    assert "Answer:" in capsys.readouterr().out


# -- execution backends and the persistent store ---------------------------


def test_backend_flag_round_trips_through_config(capsys):
    assert main(
        ["report", "--use-case", "big_three", "--backend", "asyncio:8", "--stats"]
    ) == 0
    out = capsys.readouterr().out
    assert "Backend: asyncio:8" in out


def test_backend_flag_rejects_bad_spec(capsys):
    assert main(["ask", "--use-case", "big_three", "--backend", "warp"]) == 2
    assert "error:" in capsys.readouterr().err


def test_report_stats_prints_single_flight_line(capsys):
    assert main(["report", "--use-case", "big_three", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "Single-flight:" in out
    assert "flights led" in out and "waiters served" in out


def test_no_single_flight_flag_round_trips_through_config(capsys, monkeypatch):
    from repro.app import cli as cli_module

    captured = {}
    original = cli_module.RageSession.for_use_case

    def spy(case, config=None, llm=None):
        captured["config"] = config
        return original(case, config=config, llm=llm)

    monkeypatch.setattr(cli_module.RageSession, "for_use_case", staticmethod(spy))
    assert main(
        ["report", "--use-case", "big_three", "--no-single-flight", "--stats"]
    ) == 0
    assert captured["config"].single_flight is False
    out = capsys.readouterr().out
    assert "Single-flight:" not in out  # no registry, no counters

    assert main(["report", "--use-case", "big_three"]) == 0
    assert captured["config"].single_flight is True  # default ON


def test_batch_window_flag_round_trips_and_prints_stats(capsys):
    assert main(
        ["report", "--use-case", "big_three", "--batch-window-ms", "5", "--stats"]
    ) == 0
    out = capsys.readouterr().out
    assert "Backend: coalesce:5ms+serial" in out
    assert "Batch window (5 ms):" in out
    assert "windows flushed" in out


def test_batch_window_rejects_nonpositive(capsys):
    assert main(
        ["ask", "--use-case", "big_three", "--batch-window-ms", "0"]
    ) == 2
    assert "error:" in capsys.readouterr().err


def test_report_stats_cold_then_warm_store(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    assert main(
        ["report", "--use-case", "big_three", "--cache-dir", cache_dir, "--stats"]
    ) == 0
    cold = capsys.readouterr().out
    assert "Disk store (cold run):" in cold
    assert "0 hits" in cold

    assert main(
        ["report", "--use-case", "big_three", "--cache-dir", cache_dir, "--stats"]
    ) == 0
    warm = capsys.readouterr().out
    assert "Disk store (warm run):" in warm
    assert "0 entries written" in warm

    # The two runs must render the same explanation artifacts: strip the
    # stats tail (cold/warm traffic legitimately differs) and compare.
    strip = lambda text: text.split("\nEvaluation stats:")[0]
    assert strip(cold) == strip(warm)


def test_cache_path_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    assert main(["cache", "path", "--cache-dir", cache_dir]) == 0
    assert cache_dir in capsys.readouterr().out

    assert main(
        ["report", "--use-case", "big_three", "--cache-dir", cache_dir]
    ) == 0
    capsys.readouterr()
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "cleared" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "Entries:  0" in capsys.readouterr().out


def test_cache_stats_reports_lifetime_hit_rate(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    for _ in range(2):
        assert main(
            ["report", "--use-case", "big_three", "--cache-dir", cache_dir,
             "--stats"]
        ) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "Store:" in out and "Bytes:" in out
    assert "hit rate 0.50" in out  # cold run all misses, warm run all hits


def test_lifetime_counters_persist_without_stats_flag(tmp_path, capsys):
    cache_dir = str(tmp_path / "store")
    for _ in range(2):
        assert main(
            ["report", "--use-case", "big_three", "--cache-dir", cache_dir]
        ) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "hit rate 0.50" in out  # stats persisted even without --stats


def test_cache_stats_on_missing_dir_is_an_error(tmp_path, capsys):
    missing = tmp_path / "nope"
    assert main(["cache", "stats", "--cache-dir", str(missing)]) == 2
    assert "error:" in capsys.readouterr().err
    assert not missing.exists()  # inspection must not create the store


def test_cache_clear_on_missing_dir_is_an_error(tmp_path, capsys):
    assert main(["cache", "clear", "--cache-dir", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_store_oserror_follows_exit2_contract(monkeypatch, capsys):
    import repro.core.engine as engine_mod

    def refuse(*args, **kwargs):
        raise PermissionError("read-only filesystem")

    monkeypatch.setattr(engine_mod, "PromptStore", refuse)
    code = main(["ask", "--use-case", "big_three", "--cache-dir", "/x"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_serve_wires_config_end_to_end(monkeypatch, capsys):
    """`rage serve` builds the server from the CLI flags, binds, and
    prints the live URL; join() is stubbed so the test returns."""
    from repro.app.server import RageServer

    built = {}

    def fake_join(self, timeout=None):
        built["server"] = self

    monkeypatch.setattr(RageServer, "join", fake_join)
    code = main(
        [
            "serve",
            "--use-case", "big_three",
            "--port", "0",
            "--tenants", "alice, bob",
            "--admit-rate", "5",
            "--admit-burst", "2",
            "--backend", "threaded:2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "rage serve: http://127.0.0.1:" in out
    assert "alice, bob" in out
    server = built["server"]
    assert server.tenant_names() == ["alice", "bob"]
    assert server.admit_rate == 5.0 and server.admit_burst == 2
    assert server.rage.backend.name == "threaded:2"
    assert server.default_query is not None
    assert server._httpd is None  # closed on the way out


def test_serve_rejects_bad_admission_config(capsys):
    code = main(["serve", "--port", "0", "--admit-burst", "3"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_index_build_then_stats_round_trip(tmp_path, capsys):
    index_dir = str(tmp_path / "ix")
    assert main(["index", "build", "--index-dir", index_dir,
                 "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "synced big_three" in out
    assert "0 unchanged" in out

    # A second build is a pure no-op: nothing re-added, nothing touched.
    assert main(["index", "build", "--index-dir", index_dir,
                 "--use-case", "big_three"]) == 0
    out = capsys.readouterr().out
    assert "0 added" in out
    assert "0 updated" in out

    assert main(["index", "stats", "--index-dir", index_dir]) == 0
    out = capsys.readouterr().out
    assert "Documents:" in out
    assert "Dense:      no" in out


def test_index_add_update_lifecycle(tmp_path, capsys):
    index_dir = str(tmp_path / "ix")
    assert main(["index", "add", "--index-dir", index_dir,
                 "--doc-id", "note-1", "--text", "grass courts"]) == 0
    assert "note-1: added" in capsys.readouterr().out
    assert main(["index", "add", "--index-dir", index_dir,
                 "--doc-id", "note-1", "--text", "grass courts"]) == 0
    assert "note-1: unchanged" in capsys.readouterr().out
    assert main(["index", "update", "--index-dir", index_dir,
                 "--doc-id", "note-1", "--text", "clay courts"]) == 0
    assert "note-1: updated" in capsys.readouterr().out


def test_index_add_requires_doc_fields(tmp_path, capsys):
    code = main(["index", "add", "--index-dir", str(tmp_path / "ix")])
    assert code == 2
    assert "requires --doc-id and --text" in capsys.readouterr().err


def test_index_update_unknown_doc_is_an_error(tmp_path, capsys):
    code = main(["index", "update", "--index-dir", str(tmp_path / "ix"),
                 "--doc-id", "ghost", "--text", "boo"])
    assert code == 2
    assert "ghost" in capsys.readouterr().err


def test_index_stats_on_missing_db_is_an_error(tmp_path, capsys):
    code = main(["index", "stats", "--index-dir", str(tmp_path / "nowhere")])
    assert code == 2
    assert "no index database" in capsys.readouterr().err
    assert not (tmp_path / "nowhere").exists()


def test_ask_with_persistent_index(tmp_path, capsys):
    index_dir = str(tmp_path / "ix")
    assert main(["ask", "--use-case", "big_three",
                 "--index-dir", index_dir]) == 0
    out = capsys.readouterr().out
    assert "Roger Federer" in out
    # The corpus got synced into the persistent index as a side effect.
    assert main(["index", "stats", "--index-dir", index_dir]) == 0
    assert "Documents:  4" in capsys.readouterr().out


def test_ask_hybrid_retrieval_flags(tmp_path, capsys):
    code = main(["ask", "--use-case", "big_three",
                 "--index-dir", str(tmp_path / "ix"),
                 "--retrieval-mode", "hybrid",
                 "--fusion", "rrf", "--hybrid-alpha", "0.7"])
    assert code == 0
    assert "Answer:" in capsys.readouterr().out


def test_retrieval_mode_without_index_dir_rejected(capsys):
    code = main(["ask", "--use-case", "big_three",
                 "--retrieval-mode", "dense"])
    assert code == 2
    assert "index_dir" in capsys.readouterr().err


def test_fusion_flag_inert_without_hybrid_mode(tmp_path, capsys):
    code = main(["ask", "--use-case", "big_three",
                 "--index-dir", str(tmp_path / "ix"),
                 "--fusion", "rrf"])
    assert code == 2
    assert "hybrid" in capsys.readouterr().err
