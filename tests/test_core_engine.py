"""Rage engine facade tests."""

import pytest

from repro import Rage, RageConfig, RelevanceMethod, SearchDirection, SimulatedLLM
from repro.errors import ConfigError
from repro.llm.cache import CachingLLM


def test_config_validation():
    with pytest.raises(ConfigError):
        RageConfig(k=0)
    with pytest.raises(ConfigError):
        RageConfig(max_evaluations=0)
    with pytest.raises(ConfigError):
        RageConfig(batch_workers=0)
    with pytest.raises(ConfigError):
        RageConfig(search_batch_size=0)
    with pytest.raises(ConfigError):
        RageConfig(batch_window_ms=0)
    with pytest.raises(ConfigError):
        RageConfig(batch_window_ms=-5.0)


def test_single_flight_defaults_on_and_opt_out(big_three):
    llm = SimulatedLLM(knowledge=big_three.knowledge)
    rage = Rage.from_corpus(big_three.corpus, llm)
    assert rage.llm.flights is not None  # default ON
    plain = Rage.from_corpus(
        big_three.corpus, llm, config=RageConfig(single_flight=False)
    )
    assert plain.llm.flights is None


def test_batch_window_wraps_backend_and_preserves_answers(big_three):
    from repro.exec import CoalescingBackend

    llm = SimulatedLLM(knowledge=big_three.knowledge)
    baseline = Rage.from_corpus(big_three.corpus, llm, config=RageConfig(k=4))
    windowed = Rage.from_corpus(
        big_three.corpus, llm, config=RageConfig(k=4, batch_window_ms=10.0)
    )
    assert isinstance(windowed.backend, CoalescingBackend)
    assert windowed.backend.name.startswith("coalesce:10ms+")
    assert windowed.backend.capacity == baseline.backend.capacity
    expected = baseline.combination_insights(big_three.query, sample_size=8)
    got = windowed.combination_insights(big_three.query, sample_size=8)
    assert {k: len(v) for k, v in got.groups.items()} == {
        k: len(v) for k, v in expected.groups.items()
    }
    assert windowed.backend.window_stats.windows >= 1


def test_from_corpus_builds_index(big_three):
    rage = Rage.from_corpus(big_three.corpus, SimulatedLLM(knowledge=big_three.knowledge))
    assert len(rage.index) == len(big_three.corpus)


def test_llm_wrapped_in_cache_by_default(big_three_engine):
    assert isinstance(big_three_engine.llm, CachingLLM)


def test_cache_disabled(big_three):
    rage = Rage.from_corpus(
        big_three.corpus,
        SimulatedLLM(knowledge=big_three.knowledge),
        config=RageConfig(k=4, cache=False),
    )
    assert not isinstance(rage.llm, CachingLLM)


def test_retrieve_respects_k(big_three_engine, big_three):
    context = big_three_engine.retrieve(big_three.query, k=2)
    assert context.k == 2


def test_ask(big_three_engine, big_three):
    result = big_three_engine.ask(big_three.query)
    assert result.answer == big_three.expected_answer
    assert result.context.doc_ids() == tuple(big_three.expected_context)
    assert result.generation.attention is not None


def test_ask_with_prebuilt_context(big_three_engine, big_three):
    context = big_three_engine.retrieve(big_three.query)
    result = big_three_engine.ask(big_three.query, context=context)
    assert result.context is context


def test_relevance_scores_method_switch(big_three, big_three_engine):
    context = big_three_engine.retrieve(big_three.query)
    retrieval_scores = big_three_engine.relevance_scores(context)
    attention_engine = Rage.from_corpus(
        big_three.corpus,
        SimulatedLLM(knowledge=big_three.knowledge),
        config=RageConfig(k=4, relevance_method=RelevanceMethod.ATTENTION),
    )
    attention_scores = attention_engine.relevance_scores(context)
    assert set(retrieval_scores) == set(attention_scores)
    assert retrieval_scores != attention_scores


def test_combination_insights_default_all(big_three_engine, big_three):
    insights = big_three_engine.combination_insights(big_three.query)
    assert insights.total == 15


def test_combination_insights_sampled(big_three_engine, big_three):
    insights = big_three_engine.combination_insights(big_three.query, sample_size=5)
    assert insights.total == 5


def test_permutation_insights(us_open_engine, us_open):
    insights = us_open_engine.permutation_insights(us_open.query, sample_size=20)
    assert insights.total == 20


def test_counterfactual_directions(big_three_engine, big_three):
    top_down = big_three_engine.combination_counterfactual(big_three.query)
    bottom_up = big_three_engine.combination_counterfactual(
        big_three.query, direction=SearchDirection.BOTTOM_UP
    )
    assert top_down.found and bottom_up.found
    assert top_down.direction is SearchDirection.TOP_DOWN
    assert bottom_up.direction is SearchDirection.BOTTOM_UP


def test_permutation_counterfactual(big_three_engine, big_three):
    result = big_three_engine.permutation_counterfactual(big_three.query)
    assert result.found
    assert result.counterfactual.new_answer == "Novak Djokovic"


def test_optimal_permutations(big_three_engine, big_three):
    placements = big_three_engine.optimal_permutations(big_three.query, s=4)
    assert len(placements) == 4
    assert placements[0].score >= placements[-1].score


def test_explain_bundle(big_three_engine, big_three):
    report = big_three_engine.explain(big_three.query)
    assert report.answer == big_three.expected_answer
    assert report.combination_insights.total == 15
    assert report.permutation_insights is not None
    assert report.top_down.found
    assert report.bottom_up.found
    assert report.permutation_counterfactual is not None
    assert report.optimal


def test_explain_large_context_uses_lazy_permutation_search(
    potya_engine, player_of_the_year
):
    report = potya_engine.explain(player_of_the_year.query, sample_size=10)
    # k=10 > 8: the lazy search runs under a bounded budget; the count
    # intent is order-stable, so the budget exhausts without a flip.
    assert report.permutation_counterfactual is not None
    assert not report.permutation_counterfactual.found
    assert report.permutation_counterfactual.budget_exhausted
    assert report.permutation_insights is not None  # sampled path is fine
    assert report.answer == "5"


def test_explain_reports_stability_and_llm_calls(big_three_engine, big_three):
    report = big_three_engine.explain(big_three.query)
    assert report.stability is not None
    assert report.stability.num_permutations == 24  # all 4! orders
    assert report.llm_calls > 0


def test_explain_shares_one_evaluator_memo(big_three, big_three_engine):
    """The whole report re-uses one memo: the combination insight set
    plus both baselines covers every combination search candidate, so
    the searches report zero fresh evaluations."""
    report = big_three_engine.explain(big_three.query)
    assert report.top_down.found
    assert report.top_down.num_evaluations == 0
    assert report.bottom_up.found
    assert report.bottom_up.num_evaluations == 0


def test_sub_explanations_accept_shared_evaluator(big_three, big_three_engine):
    context = big_three_engine.retrieve(big_three.query)
    evaluator = big_three_engine._evaluator(context)
    big_three_engine.combination_insights(
        big_three.query, context=context, evaluator=evaluator
    )
    calls_after_insights = evaluator.llm_calls
    result = big_three_engine.combination_counterfactual(
        big_three.query, context=context, evaluator=evaluator
    )
    assert result.found
    assert evaluator.llm_calls == calls_after_insights  # pure memo hits


def test_search_batch_size_configurable(big_three):
    rage = Rage.from_corpus(
        big_three.corpus,
        SimulatedLLM(knowledge=big_three.knowledge),
        config=RageConfig(k=4, search_batch_size=8),
    )
    top_down = rage.combination_counterfactual(big_three.query)
    assert top_down.found
    assert top_down.counterfactual.changed_sources == ("bigthree-1-match-wins",)


def test_cache_effect_across_calls(big_three, big_three_engine):
    big_three_engine.combination_insights(big_three.query)
    stats_before = big_three_engine.llm.stats.misses
    big_three_engine.combination_insights(big_three.query)
    # second pass re-evaluates the same prompts: all hits, no new misses
    assert big_three_engine.llm.stats.misses == stats_before
