"""``lock-order``: static deadlock detection over the whole program.

The ground-truth fixture models the near-miss in the real tree:
``PromptStore.put`` nests ``_evict_lock`` -> ``_stats_lock``; a buggy
``clear`` that nested them the other way round would deadlock against
a concurrent ``put``.  (The real ``clear`` dodges by taking the locks
sequentially — pinned clean below.)
"""

from __future__ import annotations

import textwrap

from repro.analysis.engine import analyze_sources


def findings(*items, rule="lock-order"):
    result = analyze_sources(
        [(rel, textwrap.dedent(text)) for rel, text in items]
    )
    return [f for f in result.findings if f.rule == rule]


#: The seeded AB/BA case: put nests evict->stats, clear nests stats->evict.
AB_BA = (
    "src/repro/llm/store.py",
    """
    import threading

    class PromptStore:
        def __init__(self):
            self._stats_lock = threading.Lock()
            self._evict_lock = threading.Lock()
            self.hits = 0
            self.entries = {}

        def put(self, key, value):
            with self._evict_lock:
                self.entries[key] = value
                with self._stats_lock:
                    self.hits += 1

        def clear(self):
            with self._stats_lock:
                self.hits = 0
                with self._evict_lock:
                    self.entries.clear()
    """,
)


def test_ab_ba_cycle_reports_both_witness_edges():
    found = findings(AB_BA)
    assert len(found) == 2
    stats = "repro.llm.store.PromptStore._stats_lock"
    evict = "repro.llm.store.PromptStore._evict_lock"
    messages = sorted(f.message for f in found)
    # One finding per edge of the cycle, each naming the full cycle and
    # carrying its own witness acquisition chain.
    assert any(
        f"{stats} is acquired while {evict} is held" in m for m in messages
    )
    assert any(
        f"{evict} is acquired while {stats} is held" in m for m in messages
    )
    for message in messages:
        assert "lock-order cycle [" in message
        assert "opposing threads deadlock" in message
    # Witnesses anchor at the inner acquisition sites and name the
    # functions on each side of the inversion.
    assert any("put" in m and "acquires" in m for m in messages)
    assert any("clear" in m and "acquires" in m for m in messages)
    # Findings land in the file that owns the locks.
    assert {f.path for f in found} == {"src/repro/llm/store.py"}


def test_sequential_acquisition_is_clean():
    # The real-tree dodge: clear() takes the same locks one after the
    # other, never nested — no order edge, no cycle.
    assert not findings(
        (
            "src/repro/llm/store.py",
            """
            import threading

            class PromptStore:
                def __init__(self):
                    self._stats_lock = threading.Lock()
                    self._evict_lock = threading.Lock()
                    self.hits = 0
                    self.entries = {}

                def put(self, key, value):
                    with self._evict_lock:
                        with self._stats_lock:
                            self.hits += 1

                def clear(self):
                    with self._stats_lock:
                        self.hits = 0
                    with self._evict_lock:
                        self.entries.clear()
            """,
        )
    )


def test_interprocedural_inversion_found_through_callee():
    # clear() holds _stats_lock and calls a helper that acquires
    # _evict_lock: the inversion only exists across the call edge.
    found = findings(
        (
            "src/repro/llm/store.py",
            """
            import threading

            class PromptStore:
                def __init__(self):
                    self._stats_lock = threading.Lock()
                    self._evict_lock = threading.Lock()
                    self.hits = 0

                def put(self, key):
                    with self._evict_lock:
                        with self._stats_lock:
                            self.hits += 1

                def clear(self):
                    with self._stats_lock:
                        self._evict()

                def _evict(self):
                    with self._evict_lock:
                        self.hits = 0
            """,
        )
    )
    assert len(found) == 2
    # The witness for the clear-side edge walks the call chain.
    assert any(
        "calls repro.llm.store.PromptStore._evict" in f.message
        for f in found
    )


def test_cross_module_cycle_is_found():
    found = findings(
        (
            "src/repro/llm/a.py",
            """
            import threading

            LOCK_A = threading.Lock()

            def first():
                from repro.llm import b
                with LOCK_A:
                    b.second_inner()
            """,
        ),
        (
            "src/repro/llm/b.py",
            """
            import threading
            from repro.llm import a

            LOCK_B = threading.Lock()

            def second():
                with LOCK_B:
                    with a.LOCK_A:
                        pass

            def second_inner():
                with LOCK_B:
                    pass
            """,
        ),
    )
    assert len(found) == 2
    assert {f.path for f in found} == {
        "src/repro/llm/a.py",
        "src/repro/llm/b.py",
    }


def test_self_deadlock_on_plain_lock_fires():
    found = findings(
        (
            "src/repro/llm/x.py",
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
        )
    )
    assert len(found) == 1
    assert "deadlock" in found[0].message


def test_self_reacquire_on_rlock_is_clean():
    assert not findings(
        (
            "src/repro/llm/x.py",
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
        )
    )


def test_suppression_silences_lock_order():
    rel, text = AB_BA
    suppressed = text.replace(
        "with self._evict_lock:\n                    self.entries.clear()",
        "with self._evict_lock:  "
        "# repro: disable=lock-order -- known, documented\n"
        "                    self.entries.clear()",
    )
    assert suppressed != text
    result = analyze_sources([(rel, textwrap.dedent(suppressed))])
    found = [f for f in result.findings if f.rule == "lock-order"]
    # The clear-side edge (anchored at the suppressed line) is waived;
    # the put-side edge of the same cycle still reports.
    assert len(found) == 1
    assert result.suppressed >= 1
