"""Knowledge base (parametric memory) tests."""

import pytest

from repro.errors import ConfigError
from repro.llm import KBFact, KnowledgeBase, QuestionIntent, parse_question


def _fact(intent, topic, answer, confidence=1.0):
    kb = KnowledgeBase()
    return kb, kb.add_fact(intent=intent, topic=topic, answer=answer, confidence=confidence)


def test_fact_validation():
    with pytest.raises(ConfigError):
        KBFact(intent=QuestionIntent.FACTOID, topic_terms=frozenset(), answer="x")
    with pytest.raises(ConfigError):
        KBFact(
            intent=QuestionIntent.FACTOID,
            topic_terms=frozenset({"a"}),
            answer="x",
            confidence=1.5,
        )


def test_lookup_matching_intent_and_topic():
    kb, fact = _fact(QuestionIntent.SUPERLATIVE, "best tennis player", "Ann Lee")
    question = parse_question("Who is the best tennis player alive?")
    assert kb.lookup(question) is fact


def test_lookup_wrong_intent_misses():
    kb, _ = _fact(QuestionIntent.SUPERLATIVE, "best tennis player", "Ann Lee")
    question = parse_question("Who is the most recent tennis champion, the best one?")
    # intent resolves to MOST_RECENT, so the SUPERLATIVE fact cannot match
    assert kb.lookup(question) is None


def test_lookup_coverage_threshold():
    kb, _ = _fact(QuestionIntent.SUPERLATIVE, "best alpine skier switzerland", "Ann Lee")
    question = parse_question("Who is the best baker?")
    assert kb.lookup(question) is None  # only 1/4 topic terms covered


def test_lookup_best_coverage_wins():
    kb = KnowledgeBase()
    weak = kb.add_fact(QuestionIntent.SUPERLATIVE, "best player somewhere else", "A")
    strong = kb.add_fact(QuestionIntent.SUPERLATIVE, "best tennis player", "B")
    question = parse_question("Who is the best tennis player?")
    assert kb.lookup(question) is strong
    assert kb.lookup(question) is not weak


def test_lookup_confidence_breaks_ties():
    kb = KnowledgeBase()
    kb.add_fact(QuestionIntent.SUPERLATIVE, "best tennis player", "low", confidence=0.4)
    high = kb.add_fact(QuestionIntent.SUPERLATIVE, "best tennis player", "high", confidence=0.9)
    question = parse_question("Who is the best tennis player?")
    assert kb.lookup(question) is high


def test_coverage_computation():
    _, fact = _fact(QuestionIntent.FACTOID, "solar panel efficiency", "x")
    question = parse_question("What is the efficiency of a solar panel?")
    assert fact.coverage(question.terms) == 1.0


def test_min_coverage_configurable():
    facts = [
        KBFact(
            intent=QuestionIntent.FACTOID,
            topic_terms=frozenset({"alpha", "beta", "gamma", "delta"}),
            answer="x",
        )
    ]
    strict = KnowledgeBase(facts, min_coverage=1.0)
    lax = KnowledgeBase(facts, min_coverage=0.25)
    question = parse_question("What about alpha?")
    assert strict.lookup(question) is None
    assert lax.lookup(question) is not None


def test_min_coverage_validation():
    with pytest.raises(ConfigError):
        KnowledgeBase(min_coverage=0.0)


def test_len_and_iter():
    kb = KnowledgeBase()
    kb.add_fact(QuestionIntent.FACTOID, "topic one", "a")
    kb.add_fact(QuestionIntent.FACTOID, "topic two", "b")
    assert len(kb) == 2
    assert {fact.answer for fact in kb} == {"a", "b"}


def test_fingerprint_is_stable_memoized_and_invalidated():
    from repro.llm import KBFact, KnowledgeBase, QuestionIntent

    fact_a = KBFact(QuestionIntent.SUPERLATIVE, frozenset({"tennis"}), "Federer")
    fact_b = KBFact(QuestionIntent.COUNT, frozenset({"titles"}), "4")
    assert (
        KnowledgeBase([fact_a, fact_b]).fingerprint()
        == KnowledgeBase([fact_b, fact_a]).fingerprint()  # order-insensitive
    )
    kb = KnowledgeBase([fact_a])
    first = kb.fingerprint()
    assert kb.fingerprint() == first  # memoized
    kb.add(fact_b)
    assert kb.fingerprint() != first  # add() invalidates
    changed = kb.fingerprint()
    kb.min_coverage = 0.9
    assert kb.fingerprint() != changed  # threshold is part of the identity
