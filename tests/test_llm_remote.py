"""RemoteLLM suites: provider dialects, async parity, fault policy,
capacity across the cache boundary, engine/CLI wiring.

Hermetic throughout — every HTTP request lands on the in-process
FakeLLMServer (the conftest network guard enforces it).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from fakes import FakeLLMServer, Fault, simulated_answer_fn

from repro import Rage, RageConfig, RemoteLLM, SimulatedLLM
from repro.app.cli import main as cli_main
from repro.core.engine import build_remote_llm
from repro.core.evaluate import ContextEvaluator
from repro.datasets import load_use_case
from repro.errors import (
    ConfigError,
    HttpStatusError,
    MalformedResponseError,
    TransportTimeoutError,
)
from repro.exec import AsyncioBackend
from repro.llm.base import (
    DispatchPath,
    abatched_generate,
    batched_generate,
    resolve_dispatch,
    run_coroutine,
)
from repro.llm.cache import CachingLLM
from repro.llm.remote import parse_model_spec
from repro.llm.store import PromptStore
from repro.llm.transport import HttpResponse, HttpTransport, RetryPolicy

FAST_RETRY = RetryPolicy(
    max_attempts=6, base_delay=0.005, max_delay=0.02, jitter=0.0
)


class CapturingTransport(HttpTransport):
    """Returns a canned body; records the exact request it was sent."""

    def __init__(self, body: bytes) -> None:
        self.body = body
        self.requests = []

    def request(self, method, url, headers, body, timeout):
        self.requests.append(
            {"method": method, "url": url, "headers": dict(headers),
             "payload": json.loads(body.decode("utf-8")), "timeout": timeout}
        )
        return HttpResponse(200, {}, self.body)


OPENAI_BODY = json.dumps(
    {
        "choices": [{"message": {"role": "assistant", "content": "Paris"}}],
        "usage": {"prompt_tokens": 7, "completion_tokens": 2},
    }
).encode()

ANTHROPIC_BODY = json.dumps(
    {
        "content": [{"type": "text", "text": "Par"}, {"type": "text", "text": "is"}],
        "usage": {"input_tokens": 5, "output_tokens": 3},
    }
).encode()


# ---------------------------------------------------------------------------
# Model specs and construction


def test_parse_model_spec():
    assert parse_model_spec("remote:openai:gpt-4o-mini") == ("openai", "gpt-4o-mini")
    assert parse_model_spec("remote:anthropic:claude-3-5-haiku") == (
        "anthropic",
        "claude-3-5-haiku",
    )
    for bad in ("remote:openai", "simulated", "remote::m", "remote:hf:m", ""):
        with pytest.raises(ConfigError):
            parse_model_spec(bad)


def test_constructor_validation():
    with pytest.raises(ConfigError):
        RemoteLLM("nobody", "m")
    with pytest.raises(ConfigError):
        RemoteLLM("openai", "")
    with pytest.raises(ConfigError):
        RemoteLLM("openai", "m", base_url="ftp://x")
    with pytest.raises(ConfigError):
        RemoteLLM("openai", "m", max_tokens=0)


def test_api_key_env_resolution(monkeypatch):
    monkeypatch.setenv("FAKE_KEY_VAR", "sk-test-123")
    llm = RemoteLLM("openai", "m", api_key_env="FAKE_KEY_VAR")
    transport = CapturingTransport(OPENAI_BODY)
    llm._client.transport = transport
    llm.generate("q")
    assert transport.requests[0]["headers"]["Authorization"] == "Bearer sk-test-123"
    monkeypatch.delenv("FAKE_KEY_VAR")
    with pytest.raises(ConfigError):
        RemoteLLM("openai", "m", api_key_env="FAKE_KEY_VAR")


def test_identity_and_cache_params():
    llm = RemoteLLM(
        "openai", "gpt-x", base_url="http://h:1/v1", temperature=0.5, max_tokens=9,
        api_key="secret",
    )
    assert llm.name == "remote:openai/gpt-x"
    assert llm.cache_params == {
        "base_url": "http://h:1/v1",
        "temperature": 0.5,
        "max_tokens": 9,
    }
    # Key material never leaks into content addressing.
    assert "secret" not in json.dumps(llm.cache_params)


# ---------------------------------------------------------------------------
# Provider dialects


def test_openai_request_shape_and_parse():
    transport = CapturingTransport(OPENAI_BODY)
    llm = RemoteLLM(
        "openai", "gpt-x", base_url="http://h:1/v1", api_key="k",
        temperature=0.3, max_tokens=42, transport=transport,
    )
    result = llm.generate("what is the capital?")
    sent = transport.requests[0]
    assert sent["url"] == "http://h:1/v1/chat/completions"
    assert sent["payload"] == {
        "model": "gpt-x",
        "messages": [{"role": "user", "content": "what is the capital?"}],
        "temperature": 0.3,
        "max_tokens": 42,
    }
    assert sent["headers"]["Authorization"] == "Bearer k"
    assert result.answer == "Paris"
    assert result.usage.prompt_tokens == 7
    assert result.usage.completion_tokens == 2


def test_anthropic_request_shape_and_parse():
    transport = CapturingTransport(ANTHROPIC_BODY)
    llm = RemoteLLM(
        "anthropic", "claude-x", base_url="http://h:1", api_key="k",
        max_tokens=64, transport=transport,
    )
    result = llm.generate("q")
    sent = transport.requests[0]
    assert sent["url"] == "http://h:1/v1/messages"
    assert sent["payload"]["max_tokens"] == 64
    assert sent["headers"]["x-api-key"] == "k"
    assert "anthropic-version" in sent["headers"]
    assert result.answer == "Paris"  # text blocks concatenated
    assert result.usage.prompt_tokens == 5
    assert result.usage.completion_tokens == 3


def test_schema_mismatch_is_not_retried():
    """Valid JSON with the wrong shape is a contract violation, not a
    transient glitch: exactly one request, MalformedResponseError."""
    transport = CapturingTransport(b'{"choices": []}')
    llm = RemoteLLM("openai", "m", base_url="http://h:1", transport=transport)
    with pytest.raises(MalformedResponseError):
        llm.generate("q")
    assert len(transport.requests) == 1


def test_usage_accounting_aggregates_and_prices():
    transport = CapturingTransport(OPENAI_BODY)
    llm = RemoteLLM(
        "openai", "m", base_url="http://h:1", transport=transport,
        prompt_price=1.0, completion_price=10.0,  # $ per million tokens
    )
    for _ in range(3):
        llm.generate("q")
    assert llm.usage.calls == 3
    assert llm.usage.prompt_tokens == 21
    assert llm.usage.completion_tokens == 6
    assert llm.usage.total_tokens == 27
    assert llm.usage_cost() == pytest.approx((21 * 1.0 + 6 * 10.0) / 1e6)
    assert any("21 prompt" in line for line in llm.usage_lines())
    unpriced = RemoteLLM("openai", "m", base_url="http://h:1", transport=transport)
    assert unpriced.usage_cost() is None


# ---------------------------------------------------------------------------
# Async parity (the PR 3 regression invariants, now over HTTP)


def test_remote_resolves_to_async_single_rung():
    llm = RemoteLLM("openai", "m", base_url="http://h:1")
    assert resolve_dispatch(llm) is DispatchPath.ASYNC_SINGLE
    assert resolve_dispatch(llm, prefer_sync=True) is DispatchPath.ASYNC_SINGLE


def test_sync_async_batch_parity_byte_identical():
    prompts = ["alpha", "beta", "gamma", "alpha"]
    with FakeLLMServer() as server:
        llm = RemoteLLM("openai", "m", base_url=server.base_url, retry=FAST_RETRY)
        sync_one = [llm.generate(p).answer for p in prompts]
        async_one = [run_coroutine(llm.agenerate(p)).answer for p in prompts]
        sync_batch = [r.answer for r in batched_generate(llm, prompts)]
        async_batch = [
            r.answer for r in asyncio.run(abatched_generate(llm, prompts))
        ]
    assert sync_one == async_one == sync_batch == async_batch
    assert len(set(sync_one)) == 3  # distinct prompts, distinct answers


def test_capacity_survives_cache_boundary():
    """CachingLLM's forwarded max_inflight bounds concurrent HTTP."""
    prompts = [f"prompt {i}" for i in range(12)]
    with FakeLLMServer(latency=0.02) as server:
        llm = RemoteLLM("openai", "m", base_url=server.base_url, retry=FAST_RETRY)
        cached = CachingLLM(llm, max_inflight=3)
        results = asyncio.run(cached.agenerate_batch(prompts))
        assert len(results) == 12
        assert 1 <= server.max_inflight <= 3


def test_evaluator_inherits_backend_capacity_over_http(big_three):
    """evaluate_many through asyncio:N + cache: inflight stays <= N."""
    with FakeLLMServer(
        answer_fn=simulated_answer_fn(big_three.knowledge), latency=0.02
    ) as server:
        llm = RemoteLLM("openai", "m", base_url=server.base_url, retry=FAST_RETRY)
        probe = Rage.from_corpus(
            big_three.corpus,
            SimulatedLLM(knowledge=big_three.knowledge),
            config=RageConfig(k=big_three.k),
        )
        context = probe.retrieve(big_three.query)
        backend = AsyncioBackend(max_inflight=4)
        cached = CachingLLM(llm, max_inflight=backend.capacity)
        evaluator = ContextEvaluator(cached, context, backend=backend)
        ids = context.doc_ids()
        orderings = [ids[:n] for n in range(1, len(ids) + 1)] + [ids]
        evaluations = evaluator.evaluate_many(orderings)
        assert len(evaluations) == len(orderings)
        assert 1 <= server.max_inflight <= 4
        # The duplicate full-context ordering cost no extra request.
        assert server.request_count == len(ids)


# ---------------------------------------------------------------------------
# Fault policy end-to-end


def test_fault_recovery_transparent_to_caller():
    with FakeLLMServer() as server:
        llm = RemoteLLM("openai", "m", base_url=server.base_url, retry=FAST_RETRY)
        clean = llm.generate("hello").answer
        server.add_faults(
            Fault(kind="status", status=429, retry_after=0.01),
            Fault(kind="status", status=502),
            Fault(kind="malformed"),
            Fault(kind="truncated"),
        )
        assert llm.generate("hello") .answer == clean
        assert llm.client.stats.retries == 4


def test_unrecoverable_status_surfaces():
    with FakeLLMServer() as server:
        llm = RemoteLLM("openai", "m", base_url=server.base_url, retry=FAST_RETRY)
        server.add_fault(Fault(kind="status", status=401))
        with pytest.raises(HttpStatusError) as err:
            llm.generate("q")
        assert err.value.status == 401
        assert server.request_count == 1


def test_persistent_429_exhausts_and_surfaces():
    with FakeLLMServer() as server:
        llm = RemoteLLM(
            "openai", "m", base_url=server.base_url,
            retry=RetryPolicy(max_attempts=3, base_delay=0.005, jitter=0.0),
        )
        for _ in range(3):
            server.add_fault(Fault(kind="status", status=429))
        with pytest.raises(HttpStatusError) as err:
            llm.generate("q")
        assert err.value.status == 429
        assert server.request_count == 3


def test_timeout_fault_retried_then_recovered():
    with FakeLLMServer() as server:
        llm = RemoteLLM(
            "openai", "m", base_url=server.base_url,
            timeout=0.1, retry=FAST_RETRY,
        )
        server.add_fault(Fault(kind="timeout", delay=0.6))
        assert llm.generate("q").answer.startswith("echo:")
        assert llm.client.stats.retries == 1


def test_timeout_exhaustion_raises_transport_timeout():
    with FakeLLMServer() as server:
        llm = RemoteLLM(
            "openai", "m", base_url=server.base_url,
            timeout=0.08, retry=RetryPolicy(max_attempts=1),
        )
        server.add_fault(Fault(kind="timeout", delay=0.6))
        with pytest.raises(TransportTimeoutError):
            llm.generate("q")


# ---------------------------------------------------------------------------
# Disk store: warm repeats make zero HTTP calls


def test_warm_prompt_store_zero_http_requests(tmp_path):
    prompts = ["p1", "p2", "p3"]
    with FakeLLMServer() as server:
        def session():
            store = PromptStore(tmp_path / "store")
            llm = RemoteLLM(
                "openai", "m", base_url=server.base_url, retry=FAST_RETRY
            )
            cached = CachingLLM(llm, store=store)
            return [cached.generate(p).answer for p in prompts]

        cold = session()
        assert server.request_count == len(prompts)
        warm = session()
        assert warm == cold
        assert server.request_count == len(prompts)  # not one more request


def test_store_splits_on_remote_cache_params(tmp_path):
    """Same model name, different endpoint settings: no entry sharing."""
    with FakeLLMServer() as server:
        store = PromptStore(tmp_path / "store")
        first = CachingLLM(
            RemoteLLM(
                "openai", "m", base_url=server.base_url,
                max_tokens=16, retry=FAST_RETRY,
            ),
            store=store,
        )
        second = CachingLLM(
            RemoteLLM(
                "openai", "m", base_url=server.base_url,
                max_tokens=32, retry=FAST_RETRY,
            ),
            store=store,
        )
        first.generate("same prompt")
        second.generate("same prompt")
        assert server.request_count == 2  # no cross-config hit


# ---------------------------------------------------------------------------
# Engine + config + CLI wiring


def test_config_validates_remote_fields():
    RageConfig(model="remote:openai:m", base_url="http://h:1")  # fine
    with pytest.raises(ConfigError):
        RageConfig(model="remote:nope:m")
    with pytest.raises(ConfigError):
        RageConfig(model="remote:openai:m", base_url="not-a-url")
    with pytest.raises(ConfigError):
        RageConfig(request_timeout=0)
    with pytest.raises(ConfigError):
        RageConfig(model="remote:openai:m", rate_limit=-1)
    with pytest.raises(ConfigError):
        RageConfig(model="remote:openai:m", rate_burst=0)
    with pytest.raises(ConfigError):
        RageConfig(retries=-1)
    with pytest.raises(ConfigError):
        RageConfig(retry_budget=-0.5)


def test_config_rejects_inert_remote_fields_without_model_spec():
    """Remote-only knobs without a remote model must fail loudly —
    a mistyped CLI run must not 'succeed' on the simulated model."""
    for kwargs in (
        {"base_url": "http://h:1"},
        {"api_key_env": "SOME_KEY"},
        {"rate_limit": 5.0},
        {"rate_burst": 2},
    ):
        with pytest.raises(ConfigError, match="remote"):
            RageConfig(**kwargs)
    # request_timeout and retries stay valid alone: the deadline also
    # governs local dispatch, and retries has a non-None default.
    RageConfig(request_timeout=5.0, retries=2)


def test_engine_remote_timeout_lives_in_transport_only(big_three):
    """Finding-3 regression: for engine-built remote models the
    deadline is per HTTP request (retries stay reachable); no
    dispatch-level deadline is stacked on top."""
    with FakeLLMServer(answer_fn=simulated_answer_fn(big_three.knowledge)) as server:
        rage = Rage.from_corpus(
            big_three.corpus,
            config=RageConfig(
                k=big_three.k,
                model="remote:openai:fake-model",
                base_url=server.base_url,
                request_timeout=0.2,
                retries=3,
            ),
        )
        assert rage.backend.timeout is None
        assert isinstance(rage.llm, CachingLLM)
        assert rage.llm.timeout is None
        remote = rage.llm.inner
        assert remote.client.timeout == 0.2
        # A stalled first attempt is retried — the configured retries
        # are reachable because each attempt gets its own deadline.
        server.add_fault(Fault(kind="timeout", delay=1.0))
        assert rage.ask(big_three.query).answer
        assert remote.client.stats.retries >= 1


def test_build_remote_llm_from_config():
    config = RageConfig(
        model="remote:anthropic:claude-x",
        base_url="http://h:9",
        request_timeout=3.0,
        rate_limit=5.0,
        retries=2,
        retry_budget=7.0,
    )
    llm = build_remote_llm(config)
    assert llm.name == "remote:anthropic/claude-x"
    assert llm.base_url == "http://h:9"
    assert llm.client.timeout == 3.0
    assert llm.client.rate_limiter is not None
    assert llm.client.rate_limiter.rate == 5.0
    assert llm.client.retry.max_attempts == 3
    assert llm.client.retry.budget == 7.0
    with pytest.raises(ConfigError):
        build_remote_llm(RageConfig())  # no model spec, no instance


def test_engine_builds_remote_model_and_answers(big_three):
    with FakeLLMServer(answer_fn=simulated_answer_fn(big_three.knowledge)) as server:
        rage = Rage.from_corpus(
            big_three.corpus,
            config=RageConfig(
                k=big_three.k,
                model="remote:openai:fake-model",
                base_url=server.base_url,
            ),
        )
        answered = rage.ask(big_three.query)
        assert server.request_count > 0
    reference = Rage.from_corpus(
        big_three.corpus,
        SimulatedLLM(knowledge=big_three.knowledge),
        config=RageConfig(k=big_three.k),
    ).ask(big_three.query)
    assert answered.answer == reference.answer


def test_cli_remote_model_ask_and_stats(capsys):
    case = load_use_case("big_three")
    with FakeLLMServer(answer_fn=simulated_answer_fn(case.knowledge)) as server:
        status = cli_main(
            [
                "ask",
                "--use-case", "big_three",
                "--model", "remote:openai:fake-model",
                "--base-url", server.base_url,
                "--retries", "1",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "Answer:" in out
        assert server.request_count > 0


def test_cli_report_stats_prints_remote_usage(capsys):
    case = load_use_case("big_three")
    with FakeLLMServer(answer_fn=simulated_answer_fn(case.knowledge)) as server:
        status = cli_main(
            [
                "report",
                "--use-case", "big_three",
                "--model", "remote:openai:fake-model",
                "--base-url", server.base_url,
                "--stats",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "Remote usage:" in out
        assert "Transport:" in out


def test_cli_rejects_bad_remote_spec(capsys):
    status = cli_main(["ask", "--use-case", "big_three", "--model", "remote:x"])
    assert status == 2
    assert "error:" in capsys.readouterr().err
