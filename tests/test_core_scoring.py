"""Relevance scoring (S(q, d, Dq)) tests."""

import pytest

from repro.core import (
    AttentionRelevance,
    RelevanceMethod,
    RetrievalRelevance,
    make_scorer,
)
from repro.core.context import Context
from repro.errors import ConfigError
from repro.llm import GenerationResult
from repro.retrieval import Document


def test_retrieval_relevance_returns_bm25_scores(big_three_engine, big_three):
    context = big_three_engine.retrieve(big_three.query)
    scores = RetrievalRelevance().scores(context)
    assert scores == context.retrieval_scores()
    assert scores["bigthree-1-match-wins"] == max(scores.values())


def test_attention_relevance_normalized(big_three_engine, big_three):
    context = big_three_engine.retrieve(big_three.query)
    scorer = AttentionRelevance(big_three_engine.llm)
    scores = scorer.scores(context)
    assert set(scores) == set(context.doc_ids())
    assert sum(scores.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in scores.values())


def test_attention_relevance_unnormalized(big_three_engine, big_three):
    context = big_three_engine.retrieve(big_three.query)
    raw = AttentionRelevance(big_three_engine.llm, normalize=False).scores(context)
    assert sum(raw.values()) > 1.0  # raw sums over layers/heads/tokens


def test_attention_relevance_reflects_position_bias(big_three_engine, big_three):
    """End sources aggregate more attention than middle ones for
    comparable texts."""
    context = big_three_engine.retrieve(big_three.query)
    scores = AttentionRelevance(big_three_engine.llm).scores(context)
    ids = context.doc_ids()
    assert scores[ids[0]] > scores[ids[2]] or scores[ids[-1]] > scores[ids[1]]


def test_attention_relevance_requires_attention():
    class NoAttention:
        name = "no-attn"

        def generate(self, prompt):
            return GenerationResult(answer="x", prompt=prompt, attention=None)

    context = Context.from_documents("q", [Document(doc_id="d", text="t")])
    with pytest.raises(ConfigError):
        AttentionRelevance(NoAttention()).scores(context)


def test_make_scorer_retrieval():
    scorer = make_scorer(RelevanceMethod.RETRIEVAL)
    assert isinstance(scorer, RetrievalRelevance)
    assert isinstance(make_scorer("retrieval"), RetrievalRelevance)


def test_make_scorer_attention_needs_llm():
    with pytest.raises(ConfigError):
        make_scorer(RelevanceMethod.ATTENTION)


def test_make_scorer_attention(big_three_engine):
    scorer = make_scorer("attention", llm=big_three_engine.llm)
    assert isinstance(scorer, AttentionRelevance)
