"""AnswerLattice tests: encoding, sandwich implication, gates, conflicts."""

import pytest

from repro.core import AnswerLattice
from repro.core.context import Context
from repro.core.lattice import MIN_ORDER_EVIDENCE
from repro.errors import ConfigError
from repro.retrieval import Document


def _context(k=4):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    return Context.from_documents("q?", docs)


def _lattice(k=4, assume=True):
    return AnswerLattice(_context(k), assume_order_insensitive=assume)


def _rec(lattice, kept, answer):
    lattice.record(tuple(kept), answer, answer)


class TestEncoding:
    def test_encode_decode_round_trip(self):
        lattice = _lattice()
        for kept in ((), ("d0",), ("d1", "d3"), ("d0", "d1", "d2", "d3")):
            mask = lattice.encode(kept)
            assert lattice.decode(mask) == kept

    def test_encode_rejects_unknown(self):
        with pytest.raises(ConfigError):
            _lattice().encode(("nope",))

    def test_decode_rejects_out_of_range_mask(self):
        with pytest.raises(ConfigError):
            _lattice().decode(1 << 5)

    def test_mask_for_combination_orderings(self):
        lattice = _lattice()
        assert lattice.mask_for(("d0", "d2")) == 0b0101
        assert lattice.mask_for(()) == 0
        assert lattice.mask_for(("d0", "d1", "d2", "d3")) == 0b1111

    def test_mask_for_rejects_non_combinations(self):
        lattice = _lattice()
        assert lattice.mask_for(("d2", "d0")) is None  # out of context order
        assert lattice.mask_for(("d0", "d0")) is None  # duplicate
        assert lattice.mask_for(("d0", "zz")) is None  # unknown id
        assert lattice.mask_for(("d1", "d0", "d2", "d3")) is None  # permutation


class TestImplication:
    def test_sandwich_implies_between_witnesses(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        entry = lattice.implied(lattice.encode(("d0", "d1")))
        assert entry is not None
        assert entry.normalized_answer == "x"
        assert entry.inferred

    def test_no_implication_without_both_witnesses(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")  # subset witness only
        assert lattice.implied(lattice.encode(("d0", "d1"))) is None

    def test_no_implication_when_witness_answers_differ(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "y")
        assert lattice.implied(lattice.encode(("d0", "d1"))) is None

    def test_contradiction_inside_interval_blocks_implication(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2", "d3"), "x")
        _rec(lattice, ("d0", "d1", "d2"), "y")  # inside [d0, full], different
        assert lattice.implied(lattice.encode(("d0", "d1"))) is None

    def test_ambiguous_witness_pairs_block_implication(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        _rec(lattice, ("d1",), "y")
        _rec(lattice, ("d0", "d1", "d3"), "y")
        # ("d0", "d1") sandwiches under both answers: refuse to guess.
        assert lattice.implied(lattice.encode(("d0", "d1"))) is None

    def test_empty_set_is_never_a_witness(self):
        lattice = _lattice()
        _rec(lattice, (), "x")  # parametric answer, not evidence
        _rec(lattice, ("d0", "d1", "d2", "d3"), "x")
        assert lattice.implied(lattice.encode(("d0",))) is None

    def test_empty_set_is_never_implied(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        assert lattice.implied(0) is None

    def test_recorded_mask_returned_verbatim(self):
        lattice = _lattice()
        _rec(lattice, ("d0", "d1"), "x")
        entry = lattice.implied(lattice.encode(("d0", "d1")))
        assert entry is not None and not entry.inferred

    def test_lookup_commits_and_counts(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        mask = lattice.encode(("d0", "d2"))
        entry = lattice.lookup(mask)
        assert entry is not None and entry.inferred
        assert lattice.stats.implied == 1
        assert lattice.known(mask) is entry  # committed for reuse


class TestGates:
    def test_inference_inactive_without_order_evidence(self):
        lattice = _lattice(assume=False)
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        assert not lattice.inference_active
        assert lattice.implied(lattice.encode(("d0", "d1"))) is None

    def test_order_stability_opens_gate(self):
        lattice = _lattice(assume=False)
        ids = lattice.doc_ids
        lattice.observe_order(ids, "x")
        swapped = (ids[1], ids[0]) + ids[2:]
        lattice.observe_order(swapped, "x")
        assert len({ids, swapped}) == MIN_ORDER_EVIDENCE
        assert lattice.inference_active
        assert lattice.order_sensitive is False

    def test_order_sensitivity_keeps_gate_shut(self):
        lattice = _lattice(assume=False)
        ids = lattice.doc_ids
        lattice.observe_order(ids, "x")
        lattice.observe_order((ids[1], ids[0]) + ids[2:], "y")
        assert lattice.order_sensitive is True
        assert not lattice.inference_active

    def test_full_context_record_counts_as_order_evidence(self):
        lattice = _lattice(assume=False)
        _rec(lattice, lattice.doc_ids, "x")
        assert lattice.order_sensitive is False
        assert not lattice.inference_active  # one ordering is not enough

    def test_conflict_disables_inference_and_rolls_back(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        mask = lattice.encode(("d0", "d1"))
        entry = lattice.lookup(mask)
        assert entry is not None and entry.inferred
        # The real model disagrees with the committed implication.
        _rec(lattice, ("d0", "d1"), "y")
        assert lattice.stats.conflicts == 1
        assert not lattice.coherent
        assert not lattice.inference_active
        known = lattice.known(mask)
        assert known is not None and not known.inferred
        assert known.normalized_answer == "y"

    def test_consistency_check_flags_disagreeing_reality(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        # Commit any implication to arm record-time checking.
        assert lattice.lookup(lattice.encode(("d0", "d2"))) is not None
        # A *different* mask arrives whose real answer contradicts what
        # the lattice would have implied for it.
        _rec(lattice, ("d0", "d1"), "y")
        assert lattice.stats.conflicts == 1
        assert not lattice.inference_active

    def test_uncommit_inferred_returns_masks(self):
        lattice = _lattice()
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        m1 = lattice.encode(("d0", "d1"))
        m2 = lattice.encode(("d0", "d2"))
        lattice.lookup(m1)
        lattice.lookup(m2)
        assert lattice.uncommit_inferred() == sorted((m1, m2))
        assert lattice.known(m1) is None
        assert lattice.inferred_count == 0


class TestGroups:
    def test_answer_groups_exclude_empty_and_inferred(self):
        lattice = _lattice()
        _rec(lattice, (), "parametric")
        _rec(lattice, ("d0",), "x")
        _rec(lattice, ("d1",), "y")
        _rec(lattice, ("d0", "d1", "d2"), "x")
        lattice.lookup(lattice.encode(("d0", "d2")))  # inferred, not grouped
        groups, display = lattice.answer_groups()
        assert groups == {"x": [("d0",), ("d0", "d1", "d2")], "y": [("d1",)]}
        assert display == {"x": "x", "y": "y"}
