"""Shared fixtures: demo use cases, engines, and small worlds."""

from __future__ import annotations

import json
import os

import pytest

from fakes import network_guard

# Concurrency tripwire (opt-in): RAGE_LOCK_WATCHDOG=1 instruments
# every lock the repro package creates, records the runtime
# acquisition-order graph, and raises LockOrderViolation the moment an
# acquisition would close a cycle — the dynamic twin of the static
# `lock-order` rule.  Installed before the package import below so no
# project lock predates the patch.
_LOCK_WATCHDOG = None
if os.environ.get("RAGE_LOCK_WATCHDOG") == "1":
    from repro.analysis import watchdog as _watchdog_mod

    _LOCK_WATCHDOG = _watchdog_mod.install()

from repro import Rage, RageConfig, SimulatedLLM

# Hermeticity tripwire: no test may open a socket off loopback.  The
# remote-LLM suites drive everything through the in-process fake
# server; anything else reaching for a real endpoint fails loudly.
network_guard.install()
from repro.core.context import Context
from repro.core.evaluate import ContextEvaluator
from repro.datasets import load_use_case
from repro.retrieval import Corpus, Document, InvertedIndex, Searcher


def pytest_sessionfinish(session, exitstatus):
    """Persist the watchdog's observed order graph for CI to upload."""
    if _LOCK_WATCHDOG is None:
        return
    report_path = os.environ.get("RAGE_LOCK_WATCHDOG_REPORT")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(_LOCK_WATCHDOG.report(), handle, indent=2, sort_keys=True)
    if _LOCK_WATCHDOG.violations and exitstatus == 0:
        # A violation always raises inside the offending test, but be
        # belt-and-braces: never let a recorded inversion exit green.
        session.exitstatus = 1


@pytest.fixture(scope="session")
def big_three():
    return load_use_case("big_three")


@pytest.fixture(scope="session")
def us_open():
    return load_use_case("us_open")


@pytest.fixture(scope="session")
def player_of_the_year():
    return load_use_case("player_of_the_year")


def make_engine(use_case, **config_kwargs) -> Rage:
    """Fresh engine for a use case (per-test isolation)."""
    defaults = dict(k=use_case.k)
    defaults.update(config_kwargs)
    return Rage.from_corpus(
        use_case.corpus,
        SimulatedLLM(knowledge=use_case.knowledge),
        config=RageConfig(**defaults),
    )


@pytest.fixture()
def big_three_engine(big_three):
    return make_engine(big_three)


@pytest.fixture()
def us_open_engine(us_open):
    return make_engine(us_open)


@pytest.fixture()
def potya_engine(player_of_the_year):
    return make_engine(player_of_the_year, max_evaluations=2000)


@pytest.fixture()
def big_three_context(big_three, big_three_engine) -> Context:
    return big_three_engine.retrieve(big_three.query)


@pytest.fixture()
def big_three_evaluator(big_three, big_three_engine, big_three_context) -> ContextEvaluator:
    return ContextEvaluator(big_three_engine.llm, big_three_context)


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """A small, hand-checkable corpus for retrieval unit tests."""
    return Corpus(
        [
            Document(doc_id="d1", text="the quick brown fox jumps over the lazy dog"),
            Document(doc_id="d2", text="a quick survey of fox populations in the wild"),
            Document(doc_id="d3", text="dogs and cats living together in harmony"),
            Document(doc_id="d4", text="quick quick quick brown foxes everywhere", title="foxes"),
        ]
    )


@pytest.fixture(scope="session")
def tiny_index(tiny_corpus) -> InvertedIndex:
    return InvertedIndex.build(tiny_corpus)


@pytest.fixture(scope="session")
def tiny_searcher(tiny_index) -> Searcher:
    return Searcher(tiny_index)
