"""No-real-network tripwire for the test and benchmark suites.

The remote-adapter suites must be hermetic: every HTTP request lands on
the in-process :class:`~fakes.fake_llm_server.FakeLLMServer` bound to
loopback.  :func:`install` patches ``socket.socket.connect`` (and
``connect_ex``) so any attempt to reach a non-loopback address fails
loudly with :class:`NetworkGuardViolation` instead of silently leaving
the sandbox — a test that would have talked to a real endpoint fails,
it does not flake on DNS.

What counts as "allowed" is not decided here: this guard and the static
``test-network-isolation`` checker both consume the single documented
allowlist in :mod:`repro.analysis.netpolicy` (loopback addresses, and
socket machinery only under ``tests/fakes/``), so the runtime and
static enforcement layers cannot drift apart.
"""

from __future__ import annotations

import socket

from repro.analysis.netpolicy import address_allowed

_REAL_CONNECT = socket.socket.connect
_REAL_CONNECT_EX = socket.socket.connect_ex


class NetworkGuardViolation(RuntimeError):
    """A test tried to open a socket to a non-loopback address."""


def _guarded_connect(self, address):
    if not address_allowed(address):
        raise NetworkGuardViolation(
            f"test tried to open a real network connection to {address!r}; "
            "all suite traffic must stay on loopback (use FakeLLMServer)"
        )
    return _REAL_CONNECT(self, address)


def _guarded_connect_ex(self, address):
    if not address_allowed(address):
        raise NetworkGuardViolation(
            f"test tried to open a real network connection to {address!r}; "
            "all suite traffic must stay on loopback (use FakeLLMServer)"
        )
    return _REAL_CONNECT_EX(self, address)


def install() -> None:
    """Activate the guard (idempotent)."""
    socket.socket.connect = _guarded_connect  # type: ignore[method-assign]
    socket.socket.connect_ex = _guarded_connect_ex  # type: ignore[method-assign]


def uninstall() -> None:
    """Restore the real socket methods (for guard self-tests)."""
    socket.socket.connect = _REAL_CONNECT  # type: ignore[method-assign]
    socket.socket.connect_ex = _REAL_CONNECT_EX  # type: ignore[method-assign]
