"""No-real-network tripwire for the test and benchmark suites.

The remote-adapter suites must be hermetic: every HTTP request lands on
the in-process :class:`~fakes.fake_llm_server.FakeLLMServer` bound to
loopback.  :func:`install` patches ``socket.socket.connect`` (and
``connect_ex``) so any attempt to reach a non-loopback address fails
loudly with :class:`NetworkGuardViolation` instead of silently leaving
the sandbox — a test that would have talked to a real endpoint fails,
it does not flake on DNS.

Unix-domain sockets and loopback (``127.0.0.0/8``, ``::1``,
``localhost``) stay allowed; multiprocessing, pytest internals and the
fake server all live there.
"""

from __future__ import annotations

import ipaddress
import socket

_LOOPBACK_NAMES = {"localhost", "localhost.localdomain", ""}

_REAL_CONNECT = socket.socket.connect
_REAL_CONNECT_EX = socket.socket.connect_ex


class NetworkGuardViolation(RuntimeError):
    """A test tried to open a socket to a non-loopback address."""


def _address_allowed(address) -> bool:
    # AF_UNIX (str/bytes paths) and already-paired sockets are local.
    if isinstance(address, (str, bytes)):
        return True
    if not isinstance(address, tuple) or not address:
        return True
    host = address[0]
    if not isinstance(host, str):
        return True
    host = host.strip("[]").split("%", 1)[0]
    if host.lower() in _LOOPBACK_NAMES:
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        # An unresolved hostname reaching connect() means someone did a
        # DNS-less connect to a name we do not recognize: block it.
        return False


def _guarded_connect(self, address):
    if not _address_allowed(address):
        raise NetworkGuardViolation(
            f"test tried to open a real network connection to {address!r}; "
            "all suite traffic must stay on loopback (use FakeLLMServer)"
        )
    return _REAL_CONNECT(self, address)


def _guarded_connect_ex(self, address):
    if not _address_allowed(address):
        raise NetworkGuardViolation(
            f"test tried to open a real network connection to {address!r}; "
            "all suite traffic must stay on loopback (use FakeLLMServer)"
        )
    return _REAL_CONNECT_EX(self, address)


def install() -> None:
    """Activate the guard (idempotent)."""
    socket.socket.connect = _guarded_connect  # type: ignore[method-assign]
    socket.socket.connect_ex = _guarded_connect_ex  # type: ignore[method-assign]


def uninstall() -> None:
    """Restore the real socket methods (for guard self-tests)."""
    socket.socket.connect = _REAL_CONNECT  # type: ignore[method-assign]
    socket.socket.connect_ex = _REAL_CONNECT_EX  # type: ignore[method-assign]
