"""Tiny stdlib JSON-over-HTTP client for exercising loopback servers.

The server suites and the E18 benchmark talk to
:class:`repro.app.server.RageServer` the way a real client would — over
a socket — but the repo forbids third-party HTTP clients, and
``urllib`` turns every non-2xx into an exception.  The exchange itself
is delegated to the library's own
:class:`~repro.llm.transport.UrllibTransport` (one home for the
non-2xx-is-a-response flattening); these helpers only shape it into
``(status, headers, body)`` tuples with JSON conveniences.  Loopback
only, of course: the network guard is active.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional, Tuple

from repro.llm.transport import UrllibTransport

#: (status, lower-cased headers, raw body bytes)
Exchange = Tuple[int, Dict[str, str], bytes]

_TRANSPORT = UrllibTransport()


def _exchange(
    method: str, url: str, body: Optional[bytes], timeout: float
) -> Exchange:
    headers = {"Content-Type": "application/json"} if body is not None else {}
    response = _TRANSPORT.request(method, url, headers, body, timeout)
    return response.status, response.headers, response.body


def get(url: str, timeout: float = 10.0) -> Exchange:
    """GET ``url``; non-2xx statuses return, they do not raise."""
    return _exchange("GET", url, None, timeout)


def post_json(
    url: str, payload: Mapping[str, object], timeout: float = 30.0
) -> Exchange:
    """POST ``payload`` as a JSON body; non-2xx statuses return."""
    return _exchange(
        "POST", url, json.dumps(dict(payload)).encode("utf-8"), timeout
    )


def post_raw(url: str, body: bytes, timeout: float = 10.0) -> Exchange:
    """POST arbitrary bytes (malformed-body tests)."""
    return _exchange("POST", url, body, timeout)


def body_json(body: bytes) -> Optional[Dict[str, object]]:
    """The body parsed as a JSON object, or ``None`` when it is not one."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None
