"""Loopback socket helpers for suites that must stay hermetic.

Raw socket machinery is only sanctioned inside ``tests/fakes/`` (see
:mod:`repro.analysis.netpolicy`); suites that need a refused port or a
raw connect probe import these helpers instead of ``socket`` directly,
which keeps them clean under the ``test-network-isolation`` checker.
"""

from __future__ import annotations

import socket


def refused_tcp_port(host: str = "127.0.0.1") -> int:
    """A loopback port with nothing listening on it.

    Bind-then-close: the kernel hands us a free port, and closing the
    listener guarantees a subsequent connect is refused (nothing else
    can have raced onto an ephemeral port we just owned).
    """
    probe = socket.socket()
    try:
        probe.bind((host, 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


def raw_connect(host: str, port: int, timeout: float = 1.0) -> None:
    """Open (and immediately close) a raw TCP connection.

    Exists so guard self-tests can drive ``socket.socket.connect``
    directly — exceptions (including ``NetworkGuardViolation``)
    propagate to the caller; the socket is always closed.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        sock.connect((host, port))
    finally:
        sock.close()
