"""Shared test doubles for the repro suites and benchmarks.

One home for the shims that used to be copy-pasted across
``bench_e14``–``bench_e16`` and several test modules:

* :mod:`~fakes.models` — in-process :class:`LanguageModel` wrappers
  (call counting, simulated latency, scriptable hangs).
* :mod:`~fakes.fake_llm_server` — a deterministic in-process HTTP
  server speaking the OpenAI/Anthropic chat dialects, with scriptable
  answers, injectable transport faults and a request journal.
* :mod:`~fakes.network_guard` — the no-real-network tripwire installed
  by the test and benchmark conftests.
* :mod:`~fakes.http_json` — a stdlib JSON-over-HTTP client for driving
  loopback servers (non-2xx statuses return instead of raising).

Everything here is import-light (stdlib + repro only) so benchmarks
can use it without pulling test-only dependencies.
"""

from . import http_json
from .fake_llm_server import FakeLLMServer, Fault, JournalEntry, simulated_answer_fn
from .models import CountingLLM, LatencyLLM, SlowPromptLLM

__all__ = [
    "FakeLLMServer",
    "Fault",
    "JournalEntry",
    "simulated_answer_fn",
    "CountingLLM",
    "LatencyLLM",
    "SlowPromptLLM",
    "http_json",
]
