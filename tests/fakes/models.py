"""In-process LanguageModel test doubles (no HTTP involved).

Promoted from the per-benchmark copies in ``bench_e14``–``bench_e16``
so every suite counts and delays calls the same way.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import List, Optional, Sequence

from repro.llm.base import GenerationResult, TokenUsage


class CountingLLM:
    """Counts every prompt that reaches the wrapped model.

    Mirrors the inner model's identity (``name`` *and* ``cache_params``)
    so content addressing — the prompt cache and the disk store — never
    notices the shim; the counters are the only observable difference.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.calls = 0
        self.batches = 0

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def cache_params(self):
        return getattr(self.inner, "cache_params", None)

    def generate(self, prompt: str) -> GenerationResult:
        self.calls += 1
        return self.inner.generate(prompt)

    def generate_batch(self, prompts: Sequence[str]) -> List[GenerationResult]:
        self.calls += len(prompts)
        self.batches += 1
        return self.inner.generate_batch(prompts)


class LatencyLLM:
    """A remote-API stand-in: deterministic answers behind a wait.

    Deliberately exposes *only* per-prompt entry points (``generate`` /
    ``agenerate``) so the execution backends are what differentiates a
    batch: serial pays every wait in sequence, threads overlap up to
    the pool width, and the event loop overlaps everything in flight.
    ``max_inflight`` records the highest observed concurrency.
    """

    def __init__(self, inner, latency: float = 0.01) -> None:
        self.inner = inner
        self.latency = latency
        self.calls = 0
        self.inflight = 0
        self.max_inflight = 0
        self._lock = threading.Lock()

    @property
    def name(self) -> str:
        return f"latency({self.inner.name})"

    def _enter(self) -> None:
        with self._lock:
            self.calls += 1
            self.inflight += 1
            self.max_inflight = max(self.max_inflight, self.inflight)

    def _exit(self) -> None:
        with self._lock:
            self.inflight -= 1

    def generate(self, prompt: str) -> GenerationResult:
        self._enter()
        try:
            time.sleep(self.latency)
            return self.inner.generate(prompt)
        finally:
            self._exit()

    async def agenerate(self, prompt: str) -> GenerationResult:
        self._enter()
        try:
            await asyncio.sleep(self.latency)
            return self.inner.generate(prompt)
        finally:
            self._exit()


class SlowPromptLLM:
    """Instant answers except prompts containing ``hang_marker``.

    The timeout suites use it to model one hung request inside an
    otherwise healthy batch: marked prompts sleep ``hang_seconds``
    (async variants sleep on the loop, so ``asyncio.wait_for`` can
    cancel them); everything else answers immediately.
    """

    name = "slow-prompt-llm"

    def __init__(
        self,
        hang_marker: str = "HANG",
        hang_seconds: float = 5.0,
        answer: str = "ok",
        offer_async: bool = True,
    ) -> None:
        self.hang_marker = hang_marker
        self.hang_seconds = hang_seconds
        self.answer = answer
        self.calls = 0
        self.completed: List[str] = []
        self._lock = threading.Lock()
        if not offer_async:
            # Hide the async entry point so dispatch resolves to the
            # sync rungs (sequential / thread pool).
            self.agenerate = None  # type: ignore[assignment]

    def _result(self, prompt: str) -> GenerationResult:
        with self._lock:
            self.completed.append(prompt)
        return GenerationResult(
            answer=self.answer, prompt=prompt, usage=TokenUsage(1, 1)
        )

    def generate(self, prompt: str) -> GenerationResult:
        with self._lock:
            self.calls += 1
        if self.hang_marker in prompt:
            time.sleep(self.hang_seconds)
        return self._result(prompt)

    async def agenerate(self, prompt: str) -> GenerationResult:  # type: ignore[misc]
        with self._lock:
            self.calls += 1
        if self.hang_marker in prompt:
            await asyncio.sleep(self.hang_seconds)
        return self._result(prompt)
