"""A hermetic, in-process fake chat-completions server.

Speaks both provider dialects :class:`repro.llm.remote.RemoteLLM`
emits — OpenAI (``POST .../chat/completions``) and Anthropic
(``POST .../v1/messages``) — on a loopback port, deterministically:

* **Scriptable answers** — ``answer_fn(prompt) -> str`` decides every
  completion (wrap a :class:`~repro.llm.simulated.SimulatedLLM` via
  :func:`simulated_answer_fn` to serve the demo worlds over HTTP); the
  default echoes a digest of the prompt.
* **Fault injection** — queue :class:`Fault` objects and the next
  requests fail in controlled ways: arbitrary statuses (429 with
  ``Retry-After``, 500, ...), a stall longer than the client timeout,
  malformed JSON, a truncated body (Content-Length lies, connection
  closes early), a mid-body TCP reset, or a slow-drip body that stalls
  past the read timeout.  Each fault is consumed by exactly one
  request.
* **Request journal** — every request that reaches the handler is
  recorded (path, prompt, headers, monotonic timestamp, fault applied),
  so tests can assert *zero HTTP traffic* for warm-cache runs and
  compute observed request rates for limiter compliance.
* **Concurrency tracking** — ``max_inflight`` records how many
  requests the (threading) server ever handled simultaneously, which
  is how the E17 benchmark proves ``asyncio:N`` actually saturates.

The server binds ``127.0.0.1`` on an ephemeral port; nothing here ever
touches a non-loopback address, so the suites run with the
:mod:`~fakes.network_guard` active.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Deque, Dict, List, Optional


@dataclass
class Fault:
    """One injected failure, consumed by the next matching request.

    ``kind`` is one of:

    ``"status"``
        Answer with ``status`` (and ``Retry-After: retry_after`` when
        set) and a JSON error body.
    ``"timeout"``
        Stall ``delay`` seconds before answering normally — longer
        than the client's timeout, so the client gives up first.
    ``"malformed"``
        200 with a body that is not JSON.
    ``"truncated"``
        200 whose ``Content-Length`` promises more bytes than are sent
        before the connection closes.
    ``"connection-reset"``
        200 headers, half the body, then a hard TCP reset (``SO_LINGER``
        zero) — the client sees ``ConnectionResetError`` mid-read, not
        a clean close.
    ``"slow-drip"``
        200 with the full ``Content-Length``, half the body, then a
        ``delay``-second stall between chunks — longer than the
        client's read timeout, so the client gives up mid-body.
    """

    kind: str = "status"
    status: int = 500
    retry_after: Optional[float] = None
    delay: float = 0.5


@dataclass
class JournalEntry:
    """One observed request."""

    path: str
    method: str
    prompt: Optional[str]
    payload: Optional[Dict[str, object]]
    headers: Dict[str, str]
    time: float
    fault: Optional[str] = None


def simulated_answer_fn(knowledge) -> Callable[[str], str]:
    """An ``answer_fn`` that answers like the demo SimulatedLLM.

    Lets the fake server serve a real use-case world over HTTP, so a
    remote-adapter report is comparable answer-for-answer with the
    in-process engine.
    """
    from repro.llm.simulated import SimulatedLLM

    model = SimulatedLLM(knowledge=knowledge)
    lock = threading.Lock()

    def answer(prompt: str) -> str:
        with lock:  # SimulatedLLM makes no thread-safety promises
            return model.generate(prompt).answer

    return answer


def _default_answer_fn(prompt: str) -> str:
    return "echo:" + hashlib.sha256(prompt.encode("utf-8")).hexdigest()[:12]


class _Handler(BaseHTTPRequestHandler):
    # Quiet: unit tests must not spray access logs into pytest output.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        srv: FakeLLMServer = self.server.fake  # type: ignore[attr-defined]
        srv._enter()
        try:
            self._handle(srv)
        except BrokenPipeError:
            pass  # client gave up (timeout tests do this on purpose)
        finally:
            srv._exit()

    def _handle(self, srv: "FakeLLMServer") -> None:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = None
        prompt = self._extract_prompt(payload)
        fault = srv._next_fault()
        srv._journal_append(
            JournalEntry(
                path=self.path,
                method="POST",
                prompt=prompt,
                payload=payload,
                headers={k.lower(): v for k, v in self.headers.items()},
                time=time.monotonic(),
                fault=fault.kind if fault else None,
            )
        )
        if srv.latency > 0:
            time.sleep(srv.latency)

        if fault is not None and fault.kind == "status":
            body = json.dumps({"error": {"message": f"injected {fault.status}"}})
            self.send_response(fault.status)
            if fault.retry_after is not None:
                self.send_header("Retry-After", str(fault.retry_after))
            self._finish_json(body)
            return
        if fault is not None and fault.kind == "timeout":
            time.sleep(fault.delay)
            # fall through: answer normally, to whoever is still there
        if fault is not None and fault.kind == "malformed":
            self.send_response(200)
            self._finish_json('{"choices": [ THIS IS NOT JSON')
            return
        if fault is not None and fault.kind == "truncated":
            body = self._completion_body(srv, prompt)
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body) + 64))
            self.end_headers()
            self.wfile.write(body[: max(1, len(body) // 2)])
            self.wfile.flush()
            self.close_connection = True
            return
        if fault is not None and fault.kind == "connection-reset":
            body = self._completion_body(srv, prompt)
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body[: max(1, len(body) // 2)])
            self.wfile.flush()
            # SO_LINGER with a zero timeout turns the upcoming close
            # into an RST, not a FIN: the client's in-progress read
            # fails with ECONNRESET instead of a short (clean) read.
            # The close itself stays with socketserver's close_request
            # teardown so finish() never writes to a dead socket.
            self.connection.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            self.close_connection = True
            return
        if fault is not None and fault.kind == "slow-drip":
            body = self._completion_body(srv, prompt)
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body[: max(1, len(body) // 2)])
            self.wfile.flush()
            time.sleep(fault.delay)
            try:
                self.wfile.write(body[max(1, len(body) // 2):])
            except OSError:
                pass  # the client timed out and hung up, as intended
            return

        if self.path.endswith("/chat/completions") or self.path.endswith(
            "/v1/messages"
        ):
            if prompt is None:
                self.send_response(400)
                self._finish_json(json.dumps({"error": "no prompt in payload"}))
                return
            self.send_response(200)
            self._finish_json(self._completion_body(srv, prompt).decode("utf-8"))
            return
        self.send_response(404)
        self._finish_json(json.dumps({"error": f"unknown path {self.path}"}))

    def _finish_json(self, body: str) -> None:
        data = body.encode("utf-8")
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    @staticmethod
    def _extract_prompt(payload: Optional[Dict[str, object]]) -> Optional[str]:
        if not isinstance(payload, dict):
            return None
        messages = payload.get("messages")
        if not isinstance(messages, list) or not messages:
            return None
        content = messages[-1].get("content") if isinstance(messages[-1], dict) else None
        return content if isinstance(content, str) else None

    def _completion_body(self, srv: "FakeLLMServer", prompt: Optional[str]) -> bytes:
        answer = srv.answer_fn(prompt or "")
        prompt_tokens = len((prompt or "").split())
        completion_tokens = len(answer.split())
        if self.path.endswith("/v1/messages"):
            payload: Dict[str, object] = {
                "id": "msg_fake",
                "type": "message",
                "role": "assistant",
                "content": [{"type": "text", "text": answer}],
                "usage": {
                    "input_tokens": prompt_tokens,
                    "output_tokens": completion_tokens,
                },
            }
        else:
            payload = {
                "id": "chatcmpl_fake",
                "object": "chat.completion",
                "choices": [
                    {
                        "index": 0,
                        "message": {"role": "assistant", "content": answer},
                        "finish_reason": "stop",
                    }
                ],
                "usage": {
                    "prompt_tokens": prompt_tokens,
                    "completion_tokens": completion_tokens,
                    "total_tokens": prompt_tokens + completion_tokens,
                },
            }
        return json.dumps(payload).encode("utf-8")


class FakeLLMServer:
    """The scriptable loopback server (see module docstring).

    Use as a context manager::

        with FakeLLMServer(answer_fn=simulated_answer_fn(kb)) as server:
            llm = RemoteLLM("openai", "fake-model", base_url=server.base_url)
            ...

    ``journal`` (and the convenience ``request_count`` /
    ``prompts_seen``) observe traffic; ``add_fault`` queues failures.
    """

    def __init__(
        self,
        answer_fn: Optional[Callable[[str], str]] = None,
        latency: float = 0.0,
    ) -> None:
        self.answer_fn = answer_fn or _default_answer_fn
        self.latency = latency
        self.journal: List[JournalEntry] = []
        self._faults: Deque[Fault] = deque()
        self._lock = threading.Lock()
        self.inflight = 0
        self.max_inflight = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FakeLLMServer":
        assert self._httpd is None, "server already started"
        httpd = ThreadingHTTPServer(("127.0.0.1", 0), _Handler)
        httpd.daemon_threads = True
        httpd.fake = self  # the handler reaches back through self.server.fake
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.01},
            name="fake-llm-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "FakeLLMServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def base_url(self) -> str:
        assert self._httpd is not None, "server not started"
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    # -- scripting ---------------------------------------------------------

    def add_fault(self, fault: Fault) -> None:
        """Queue one fault; consumed by the next request, FIFO."""
        with self._lock:
            self._faults.append(fault)

    def add_faults(self, *faults: Fault) -> None:
        for fault in faults:
            self.add_fault(fault)

    # -- observation -------------------------------------------------------

    @property
    def request_count(self) -> int:
        with self._lock:
            return len(self.journal)

    def prompts_seen(self) -> List[str]:
        with self._lock:
            return [e.prompt for e in self.journal if e.prompt is not None]

    def request_times(self) -> List[float]:
        """Monotonic arrival timestamps, sorted."""
        with self._lock:
            return sorted(entry.time for entry in self.journal)

    def max_requests_per_window(self, window: float = 1.0) -> int:
        """Highest request count observed in any sliding ``window``."""
        times = self.request_times()
        best = 0
        lo = 0
        for hi, stamp in enumerate(times):
            while stamp - times[lo] > window:
                lo += 1
            best = max(best, hi - lo + 1)
        return best

    def clear_journal(self) -> None:
        with self._lock:
            self.journal.clear()

    # -- handler callbacks -------------------------------------------------

    def _next_fault(self) -> Optional[Fault]:
        with self._lock:
            return self._faults.popleft() if self._faults else None

    def _journal_append(self, entry: JournalEntry) -> None:
        with self._lock:
            self.journal.append(entry)

    def _enter(self) -> None:
        with self._lock:
            self.inflight += 1
            self.max_inflight = max(self.max_inflight, self.inflight)

    def _exit(self) -> None:
        with self._lock:
            self.inflight -= 1
