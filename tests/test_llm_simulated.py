"""Simulated LLM behaviour tests (presence, order, parametric knowledge)."""

import pytest

from repro.attention import PositionPrior
from repro.errors import ConfigError
from repro.llm import (
    KnowledgeBase,
    PromptBuilder,
    QuestionIntent,
    SimulatedLLM,
    SimulatedLLMConfig,
)

BUILDER = PromptBuilder()


def _answer(llm, question, sources):
    return llm.generate(BUILDER.build(question, sources)).answer


@pytest.fixture()
def superlative_llm():
    kb = KnowledgeBase()
    kb.add_fact(QuestionIntent.SUPERLATIVE, "best archer kingdom", "Default Champ", 1.0)
    return SimulatedLLM(knowledge=kb)


def test_deterministic(superlative_llm):
    question = "Who is the best archer in the kingdom?"
    sources = ["Robin Hood is widely considered the best archer in the kingdom."]
    first = _answer(superlative_llm, question, sources)
    second = _answer(superlative_llm, question, sources)
    assert first == second == "Robin Hood"


def test_empty_context_uses_knowledge_base(superlative_llm):
    question = "Who is the best archer in the kingdom?"
    assert _answer(superlative_llm, question, []) == "Default Champ"


def test_empty_context_unknown_without_kb():
    llm = SimulatedLLM()
    answer = _answer(llm, "Who is the best archer in the kingdom?", [])
    assert answer == llm.config.unknown_answer


def test_context_overrides_parametric_prior(superlative_llm):
    question = "Who is the best archer in the kingdom?"
    sources = ["Robin Hood is widely considered the best archer in the kingdom."]
    assert _answer(superlative_llm, question, sources) == "Robin Hood"


def test_presence_sensitivity(superlative_llm):
    """Removing the only supporting source changes the answer."""
    question = "Who is the best archer in the kingdom?"
    robin = "Robin Hood is widely considered the best archer in the kingdom."
    will = "Will Scarlet ranks first with 99 archer tournament wins in the kingdom."
    with_both = _answer(superlative_llm, question, [robin, will])
    without_robin = _answer(superlative_llm, question, [will])
    assert with_both == "Robin Hood"  # explicit superlative beats rank-first
    assert without_robin == "Will Scarlet"


def test_order_sensitivity():
    """With a deep V prior, the first/last positions dominate the middle."""
    question = "Who is the best archer in the contest?"
    docs = [
        "Ann Arrow ranks first with 50 archer contest wins.",
        "Bo Bolt ranks first with 49 archer contest wins.",
        "Cy Quiver ranks first with 48 archer contest wins.",
    ]
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior_depth=0.9))
    front = _answer(llm, question, docs)
    # Move Ann's doc to the middle: the end positions now carry Bo and Cy.
    middled = _answer(llm, question, [docs[1], docs[0], docs[2]])
    assert front == "Ann Arrow"
    assert middled != "Ann Arrow"


def test_uniform_prior_removes_order_sensitivity():
    question = "Who is the best archer in the contest?"
    docs = [
        "Ann Arrow ranks first with 50 archer contest wins.",
        "Bo Bolt ranks first with 49 archer contest wins.",
        "Cy Quiver ranks first with 48 archer contest wins.",
    ]
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior=PositionPrior.UNIFORM))
    answers = {
        _answer(llm, question, docs),
        _answer(llm, question, [docs[1], docs[0], docs[2]]),
        _answer(llm, question, [docs[2], docs[1], docs[0]]),
    }
    assert len(answers) == 1  # ties broken lexicographically, order-free


def test_most_recent_prefers_newer_claim():
    question = "Who is the most recent winner of the sandcastle cup?"
    docs = [
        "The 2020 sandcastle cup was won by Ann Dune.",
        "The 2023 sandcastle cup was won by Bay Shore.",
    ]
    llm = SimulatedLLM()
    assert _answer(llm, question, docs) == "Bay Shore"
    assert _answer(llm, question, list(reversed(docs))) == "Bay Shore"


def test_most_recent_low_attention_recency_loses():
    """A newer claim buried mid-context loses to an older end claim."""
    question = "Who is the most recent winner of the sandcastle cup?"
    docs = [
        "The 2019 sandcastle cup was won by Ann Dune.",
        "The 2020 sandcastle cup was won by Cole Breaker.",
        "The 2023 sandcastle cup was won by Bay Shore.",  # buried below
        "The 2021 sandcastle cup was won by Dee Tide.",
        "The 2022 sandcastle cup was won by Eb Flow.",
    ]
    reordered = [docs[0], docs[1], docs[2], docs[3], docs[4]]
    buried = [docs[0], docs[3], docs[2], docs[1], docs[4]]
    # Put 2023 in the exact middle; 2022 sits last (high attention).
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior_depth=0.8))
    assert _answer(llm, question, reordered) != _answer(llm, question, buried) or True
    middled = _answer(llm, question, buried)
    assert middled == "Eb Flow"


def test_earliest_intent():
    question = "Who was the first winner of the sandcastle cup?"
    docs = [
        "The 2020 sandcastle cup was won by Ann Dune.",
        "The 2023 sandcastle cup was won by Bay Shore.",
    ]
    llm = SimulatedLLM()
    assert _answer(llm, question, docs) == "Ann Dune"
    assert _answer(llm, question, list(reversed(docs))) == "Ann Dune"


def test_earliest_position_bias_mirrors_recency():
    """A buried oldest claim can lose to a later claim at an end slot."""
    question = "Who was the earliest winner of the sandcastle cup?"
    docs = [
        "The 2021 sandcastle cup was won by Cole Breaker.",
        "The 2022 sandcastle cup was won by Dee Tide.",
        "The 2019 sandcastle cup was won by Ann Dune.",  # oldest, middle
        "The 2023 sandcastle cup was won by Eb Flow.",
        "The 2020 sandcastle cup was won by Bay Shore.",  # 2nd oldest, end
    ]
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior_depth=0.8))
    assert _answer(llm, question, docs) == "Bay Shore"


def test_earliest_vs_most_recent_same_context():
    docs = [
        "The 2020 sandcastle cup was won by Ann Dune.",
        "The 2023 sandcastle cup was won by Bay Shore.",
    ]
    llm = SimulatedLLM()
    first = _answer(llm, "Who was the first winner of the sandcastle cup?", docs)
    latest = _answer(llm, "Who is the most recent winner of the sandcastle cup?", docs)
    assert first == "Ann Dune"
    assert latest == "Bay Shore"


def test_count_intent():
    question = "How many times did Pat Drum win the parade award between 2001 and 2004?"
    docs = [
        "The 2001 parade award was won by Pat Drum.",
        "The 2002 parade award was won by Sal Horn.",
        "The 2003 parade award was won by Pat Drum.",
        "The 2004 parade award was won by Pat Drum.",
    ]
    llm = SimulatedLLM()
    assert _answer(llm, question, docs) == "3"


def test_count_respects_year_range():
    question = "How many times did Pat Drum win the parade award between 2002 and 2003?"
    docs = [
        "The 2001 parade award was won by Pat Drum.",
        "The 2003 parade award was won by Pat Drum.",
        "The 2009 parade award was won by Pat Drum.",
    ]
    assert _answer(SimulatedLLM(), question, docs) == "1"


def test_count_order_insensitive():
    question = "How many times did Pat Drum win the parade award between 2001 and 2004?"
    docs = [
        "The 2001 parade award was won by Pat Drum.",
        "The 2002 parade award was won by Sal Horn.",
        "The 2003 parade award was won by Pat Drum.",
    ]
    llm = SimulatedLLM()
    import itertools

    answers = {
        _answer(llm, question, list(order)) for order in itertools.permutations(docs)
    }
    assert answers == {"2"}


def test_count_duplicate_years_counted_once():
    question = "How many times did Pat Drum win the parade award between 2001 and 2004?"
    docs = [
        "The 2001 parade award was won by Pat Drum.",
        "Pat Drum won the parade award in 2001.",
    ]
    assert _answer(SimulatedLLM(), question, docs) == "1"


def test_factoid_intent_uses_any_claim():
    question = "Who won the pie contest trophy?"
    docs = ["Sam Baker won the pie contest trophy in 2015."]
    assert _answer(SimulatedLLM(), question, docs) == "Sam Baker"


def test_off_topic_sources_do_not_vote():
    question = "Who is the best archer in the kingdom?"
    docs = [
        "Robin Hood is widely considered the best archer in the kingdom.",
        "Tess Tube is widely considered the best chemist in the laboratory.",
    ]
    result = SimulatedLLM().generate(BUILDER.build(question, docs))
    votes = result.diagnostics["votes"]
    assert "Tess Tube" not in votes


def test_diagnostics_and_usage():
    question = "Who is the best archer in the kingdom?"
    docs = ["Robin Hood is widely considered the best archer in the kingdom."]
    result = SimulatedLLM().generate(BUILDER.build(question, docs))
    assert result.diagnostics["intent"] == "superlative"
    assert result.usage.prompt_tokens > 0
    assert result.usage.completion_tokens == 2
    assert result.usage.total_tokens == result.usage.prompt_tokens + 2


def test_attention_trace_attached():
    question = "Who is the best archer in the kingdom?"
    docs = ["Robin Hood is widely considered the best archer in the kingdom."]
    result = SimulatedLLM().generate(BUILDER.build(question, docs))
    assert result.attention is not None
    assert len(result.attention.source_totals) == 1


def test_name_reflects_config():
    llm = SimulatedLLM(config=SimulatedLLMConfig(prior=PositionPrior.UNIFORM), seed=3)
    assert "uniform" in llm.name
    assert "s3" in llm.name


def test_config_validation():
    with pytest.raises(ConfigError):
        SimulatedLLMConfig(recency_decay=0.0)
    with pytest.raises(ConfigError):
        SimulatedLLMConfig(kb_prior_weight=-1.0)
    with pytest.raises(ConfigError):
        SimulatedLLMConfig(superlative_strength=0.0)
