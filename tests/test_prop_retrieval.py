"""Property-based tests for the retrieval substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval import BM25Scorer, Corpus, Document, InvertedIndex, Searcher

words = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)
doc_texts = st.lists(words, min_size=1, max_size=30).map(" ".join)


@st.composite
def corpora(draw):
    texts = draw(st.lists(doc_texts, min_size=1, max_size=8))
    return Corpus(
        Document(doc_id=f"d{i}", text=text) for i, text in enumerate(texts)
    )


@given(corpora())
@settings(max_examples=40, deadline=None)
def test_index_consistency(corpus):
    index = InvertedIndex.build(corpus)
    assert len(index) == len(corpus)
    stats = index.stats
    assert stats.total_terms == sum(
        index.doc_length(doc.doc_id) for doc in corpus
    )
    # df of every term equals its postings length and is within bounds
    for term in index.vocabulary():
        df = index.document_frequency(term)
        assert 1 <= df <= len(corpus)
        assert df == len(index.postings(term))


@given(corpora())
@settings(max_examples=40, deadline=None)
def test_postings_tf_matches_positions(corpus):
    index = InvertedIndex.build(corpus)
    for term in index.vocabulary():
        for posting in index.postings(term):
            assert posting.term_frequency == len(posting.positions)
            assert list(posting.positions) == sorted(posting.positions)


@given(corpora(), st.lists(words, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_bm25_scores_nonnegative(corpus, query_words):
    index = InvertedIndex.build(corpus)
    scores = BM25Scorer().score_query(index, query_words)
    assert all(value >= 0 for value in scores.values())
    # only documents containing at least one query term are scored
    for doc_id in scores:
        assert any(index.term_frequency(w, doc_id) > 0 for w in query_words)


@given(corpora(), st.lists(words, min_size=1, max_size=4), st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_search_ranking_invariants(corpus, query_words, k):
    searcher = Searcher(InvertedIndex.build(corpus))
    result = searcher.search(" ".join(query_words), k=k)
    assert len(result) <= k
    scores = result.scores()
    assert scores == sorted(scores, reverse=True)
    assert len(set(result.doc_ids())) == len(result)


@given(corpora(), st.lists(words, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_search_deterministic(corpus, query_words):
    query = " ".join(query_words)
    searcher = Searcher(InvertedIndex.build(corpus))
    assert searcher.search(query, k=5).doc_ids() == searcher.search(query, k=5).doc_ids()


@given(corpora())
@settings(max_examples=20, deadline=None)
def test_adding_matching_term_does_not_hurt(corpus):
    """Appending the query term to a document never lowers its score."""
    query_word = "zzzneedle"
    index_before = InvertedIndex.build(corpus)
    boosted = Corpus(
        Document(doc_id=doc.doc_id, text=doc.text + " " + query_word)
        for doc in corpus
    )
    index_after = InvertedIndex.build(boosted)
    query_terms = index_before.tokenizer.tokenize(query_word)  # analyzed form
    before = BM25Scorer().score_query(index_before, query_terms)
    after = BM25Scorer().score_query(index_after, query_terms)
    assert not before
    assert set(after) == {doc.doc_id for doc in corpus}


@given(corpora(), st.data())
@settings(max_examples=40, deadline=None)
def test_remove_document_inverts_add(corpus, data):
    """Index-then-remove leaves statistics identical to never-adding."""
    index = InvertedIndex.build(corpus)
    victim = data.draw(st.sampled_from(corpus.doc_ids()))
    index.remove_document(victim)
    rebuilt = InvertedIndex.build(d for d in corpus if d.doc_id != victim)
    assert index.stats == rebuilt.stats
    assert index.vocabulary() == rebuilt.vocabulary()
    for term in rebuilt.vocabulary():
        assert index.document_frequency(term) == rebuilt.document_frequency(term)
        assert sorted(index.postings(term), key=lambda p: p.doc_id) == sorted(
            rebuilt.postings(term), key=lambda p: p.doc_id
        )


@given(corpora(), doc_texts, st.data())
@settings(max_examples=40, deadline=None)
def test_update_document_equals_fresh_build(corpus, new_text, data):
    """Updating in place is indistinguishable from indexing fresh."""
    index = InvertedIndex.build(corpus)
    victim = data.draw(st.sampled_from(corpus.doc_ids()))
    index.update_document(Document(doc_id=victim, text=new_text))
    fresh = InvertedIndex.build(
        Document(doc_id=d.doc_id, text=new_text) if d.doc_id == victim else d
        for d in corpus
    )
    assert index.stats == fresh.stats
    assert index.vocabulary() == fresh.vocabulary()
    for term in fresh.vocabulary():
        assert sorted(index.postings(term), key=lambda p: p.doc_id) == sorted(
            fresh.postings(term), key=lambda p: p.doc_id
        )
