"""Property-based tests for the retrieval substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval import BM25Scorer, Corpus, Document, InvertedIndex, Searcher

words = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)
doc_texts = st.lists(words, min_size=1, max_size=30).map(" ".join)


@st.composite
def corpora(draw):
    texts = draw(st.lists(doc_texts, min_size=1, max_size=8))
    return Corpus(
        Document(doc_id=f"d{i}", text=text) for i, text in enumerate(texts)
    )


@given(corpora())
@settings(max_examples=40, deadline=None)
def test_index_consistency(corpus):
    index = InvertedIndex.build(corpus)
    assert len(index) == len(corpus)
    stats = index.stats
    assert stats.total_terms == sum(
        index.doc_length(doc.doc_id) for doc in corpus
    )
    # df of every term equals its postings length and is within bounds
    for term in index.vocabulary():
        df = index.document_frequency(term)
        assert 1 <= df <= len(corpus)
        assert df == len(index.postings(term))


@given(corpora())
@settings(max_examples=40, deadline=None)
def test_postings_tf_matches_positions(corpus):
    index = InvertedIndex.build(corpus)
    for term in index.vocabulary():
        for posting in index.postings(term):
            assert posting.term_frequency == len(posting.positions)
            assert list(posting.positions) == sorted(posting.positions)


@given(corpora(), st.lists(words, min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_bm25_scores_nonnegative(corpus, query_words):
    index = InvertedIndex.build(corpus)
    scores = BM25Scorer().score_query(index, query_words)
    assert all(value >= 0 for value in scores.values())
    # only documents containing at least one query term are scored
    for doc_id in scores:
        assert any(index.term_frequency(w, doc_id) > 0 for w in query_words)


@given(corpora(), st.lists(words, min_size=1, max_size=4), st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_search_ranking_invariants(corpus, query_words, k):
    searcher = Searcher(InvertedIndex.build(corpus))
    result = searcher.search(" ".join(query_words), k=k)
    assert len(result) <= k
    scores = result.scores()
    assert scores == sorted(scores, reverse=True)
    assert len(set(result.doc_ids())) == len(result)


@given(corpora(), st.lists(words, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_search_deterministic(corpus, query_words):
    query = " ".join(query_words)
    searcher = Searcher(InvertedIndex.build(corpus))
    assert searcher.search(query, k=5).doc_ids() == searcher.search(query, k=5).doc_ids()


@given(corpora())
@settings(max_examples=20, deadline=None)
def test_adding_matching_term_does_not_hurt(corpus):
    """Appending the query term to a document never lowers its score."""
    query_word = "zzzneedle"
    index_before = InvertedIndex.build(corpus)
    boosted = Corpus(
        Document(doc_id=doc.doc_id, text=doc.text + " " + query_word)
        for doc in corpus
    )
    index_after = InvertedIndex.build(boosted)
    query_terms = index_before.tokenizer.tokenize(query_word)  # analyzed form
    before = BM25Scorer().score_query(index_before, query_terms)
    after = BM25Scorer().score_query(index_after, query_terms)
    assert not before
    assert set(after) == {doc.doc_id for doc in corpus}
