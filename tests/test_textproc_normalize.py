"""Answer normalization — the paper's comparison rule."""

from repro.textproc import answers_equal, normalize_answer, normalize_entity, strip_accents


def test_lowercase():
    assert normalize_answer("Roger Federer") == "roger federer"


def test_punctuation_removed():
    assert normalize_answer("Roger Federer.") == "roger federer"
    assert normalize_answer("it's: five!") == "it s five"


def test_whitespace_trimmed_and_collapsed():
    assert normalize_answer("  Roger   Federer \n") == "roger federer"


def test_idempotent():
    values = ["Roger Federer.", "  FIVE ", "Iga Świątek!", "a  b\tc"]
    for value in values:
        once = normalize_answer(value)
        assert normalize_answer(once) == once


def test_accents_folded():
    assert normalize_answer("Iga Świątek") == "iga swiatek"


def test_strip_accents():
    assert strip_accents("café") == "cafe"
    assert strip_accents("naïve") == "naive"


def test_answers_equal():
    assert answers_equal("Roger Federer.", "roger federer")
    assert answers_equal("FIVE", "five")
    assert not answers_equal("Roger Federer", "Novak Djokovic")


def test_numbers_survive():
    assert normalize_answer("5") == "5"
    assert normalize_answer(" 5. ") == "5"


def test_normalize_entity_matches_answer_folding():
    assert normalize_entity("Djokovic's") == normalize_answer("djokovic s")


def test_empty_string():
    assert normalize_answer("") == ""
    assert normalize_answer("   ") == ""
