"""Self-hosting: the analysis suite runs clean on this repository.

The engine's acceptance bar — every true positive it surfaced has been
fixed (or carries a justified inline suppression), and it keeps this
tree clean going forward.  ``rage lint`` / CI run the same scan.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

REPO = Path(__file__).resolve().parents[1]
SCANNED = ["src", "tests", "benchmarks"]


@pytest.fixture(scope="module")
def repo_result():
    return analyze_paths(SCANNED, root=REPO)


def test_repo_has_zero_findings(repo_result):
    assert [f.render() for f in repo_result.findings] == []


def test_scan_actually_covered_the_tree(repo_result):
    # Guards against a layout change silently emptying the scan.
    assert repo_result.files > 150


def test_deliberate_exceptions_are_inline_suppressed(repo_result):
    # The async simulated/scripted adapters answer inline on purpose;
    # their justified suppressions are the only ones in the tree.
    assert repo_result.suppressed == 4
