"""Positional attention prior tests."""

import math

import pytest

from repro.attention import (
    PositionPrior,
    inverted_v_weights,
    position_weights,
    primacy_weights,
    recency_weights,
    uniform_weights,
    v_shaped_weights,
)
from repro.errors import ConfigError


@pytest.mark.parametrize("prior", list(PositionPrior))
@pytest.mark.parametrize("k", [1, 2, 3, 5, 10, 25])
def test_weights_normalized(prior, k):
    weights = position_weights(prior, k)
    assert len(weights) == k
    assert math.isclose(sum(weights), 1.0, rel_tol=1e-12)
    assert all(w > 0 for w in weights)


def test_v_shape_ends_high_middle_low():
    weights = v_shaped_weights(7, depth=0.8)
    middle = weights[3]
    assert weights[0] > middle
    assert weights[-1] > middle
    assert weights[0] == pytest.approx(weights[-1])


def test_v_shape_symmetric():
    weights = v_shaped_weights(6, depth=0.5)
    assert weights == pytest.approx(list(reversed(weights)))


def test_v_shape_monotone_towards_middle():
    weights = v_shaped_weights(9, depth=0.7)
    half = weights[: 9 // 2 + 1]
    assert all(half[i] >= half[i + 1] for i in range(len(half) - 1))


def test_v_depth_zero_is_uniform():
    assert v_shaped_weights(5, depth=0.0) == pytest.approx(uniform_weights(5))


def test_v_deeper_means_lower_middle():
    shallow = v_shaped_weights(7, depth=0.3)
    deep = v_shaped_weights(7, depth=0.9)
    assert deep[3] < shallow[3]


def test_inverted_v_middle_high():
    weights = inverted_v_weights(7, depth=0.8)
    assert weights[3] > weights[0]
    assert weights[3] > weights[-1]


def test_primacy_decreasing():
    weights = primacy_weights(6, decay=0.6)
    assert all(weights[i] > weights[i + 1] for i in range(5))


def test_recency_is_reversed_primacy():
    assert recency_weights(6, decay=0.6) == list(reversed(primacy_weights(6, decay=0.6)))


def test_single_position():
    for prior in PositionPrior:
        assert position_weights(prior, 1) == [1.0]


def test_string_prior_accepted():
    assert position_weights("uniform", 4) == uniform_weights(4)


def test_invalid_inputs():
    with pytest.raises(ConfigError):
        position_weights(PositionPrior.UNIFORM, 0)
    with pytest.raises(ConfigError):
        v_shaped_weights(5, depth=1.5)
    with pytest.raises(ConfigError):
        primacy_weights(5, decay=0.0)
    with pytest.raises(ValueError):
        position_weights("not-a-prior", 4)


def test_depth_parameter_passthrough():
    assert position_weights(PositionPrior.V_SHAPED, 5, depth=0.9) == pytest.approx(
        v_shaped_weights(5, depth=0.9)
    )
