"""Async LLM contract tests: the dispatch resolver, abatched_generate,
and the async entry points of the concrete backends.

Async tests run through ``asyncio.run`` inside plain sync test
functions, so they need no pytest plugin; CI additionally installs
pytest-asyncio for downstream suites that prefer native async tests.
"""

import asyncio

import pytest

from repro.llm import (
    CachingLLM,
    DispatchPath,
    GenerationResult,
    PromptBuilder,
    ScriptedLLM,
    SimulatedLLM,
    abatched_generate,
    batched_generate,
    resolve_dispatch,
    run_coroutine,
)

BUILDER = PromptBuilder()


def _prompts(n):
    return [
        BUILDER.build("Who won the race?", [f"Runner {i} won the race in 201{i}."])
        for i in range(n)
    ]


class SyncOnly:
    name = "sync-only"

    def generate(self, prompt):
        return GenerationResult(answer="s", prompt=prompt)


class SyncBatch(SyncOnly):
    name = "sync-batch"

    def generate_batch(self, prompts):
        return [self.generate(p) for p in prompts]


class AsyncSingle(SyncOnly):
    """Per-prompt async model that records observed concurrency."""

    name = "async-single"

    def __init__(self, delay=0.0):
        self.delay = delay
        self.inflight = 0
        self.max_inflight = 0
        self.calls = 0

    async def agenerate(self, prompt):
        self.calls += 1
        self.inflight += 1
        self.max_inflight = max(self.max_inflight, self.inflight)
        await asyncio.sleep(self.delay)
        self.inflight -= 1
        return GenerationResult(answer="a", prompt=prompt)


class AsyncBatch(AsyncSingle):
    name = "async-batch"

    async def agenerate_batch(self, prompts):
        self.calls += len(prompts)
        return [GenerationResult(answer="ab", prompt=p) for p in prompts]


class MisalignedAsyncBatch(SyncOnly):
    name = "misaligned-async"

    async def agenerate_batch(self, prompts):
        return []


# -- resolver ----------------------------------------------------------------


def test_resolver_canonical_order_is_async_first():
    assert resolve_dispatch(AsyncBatch()) is DispatchPath.ASYNC_BATCH
    assert resolve_dispatch(AsyncSingle()) is DispatchPath.ASYNC_SINGLE
    assert resolve_dispatch(SyncBatch()) is DispatchPath.SYNC_BATCH
    assert resolve_dispatch(SyncOnly()) is DispatchPath.SEQUENTIAL
    assert resolve_dispatch(SyncOnly(), max_workers=4) is DispatchPath.THREAD_POOL
    assert resolve_dispatch(SyncOnly(), max_workers=1) is DispatchPath.SEQUENTIAL


def test_resolver_async_batch_beats_sync_batch():
    class Both(SyncBatch, AsyncBatch):
        name = "both"

    assert resolve_dispatch(Both()) is DispatchPath.ASYNC_BATCH
    assert resolve_dispatch(Both(), prefer_sync=True) is DispatchPath.SYNC_BATCH


def test_resolver_async_single_beats_thread_pool():
    assert resolve_dispatch(AsyncSingle(), max_workers=8) is DispatchPath.ASYNC_SINGLE


def test_resolver_on_shipped_models():
    assert resolve_dispatch(SimulatedLLM()) is DispatchPath.ASYNC_BATCH
    assert (
        resolve_dispatch(SimulatedLLM(), prefer_sync=True) is DispatchPath.SYNC_BATCH
    )
    assert resolve_dispatch(ScriptedLLM()) is DispatchPath.ASYNC_BATCH
    assert resolve_dispatch(CachingLLM(SimulatedLLM())) is DispatchPath.ASYNC_BATCH


# -- abatched_generate -------------------------------------------------------


def test_abatched_generate_empty_is_free():
    model = AsyncSingle()
    assert asyncio.run(abatched_generate(model, [])) == []
    assert model.calls == 0


def test_abatched_generate_async_batch_path():
    model = AsyncBatch()
    prompts = _prompts(4)
    results = asyncio.run(abatched_generate(model, prompts))
    assert [r.prompt for r in results] == prompts
    assert [r.answer for r in results] == ["ab"] * 4


def test_abatched_generate_task_group_overlaps_calls():
    model = AsyncSingle(delay=0.01)
    results = asyncio.run(abatched_generate(model, _prompts(6)))
    assert len(results) == 6
    assert model.max_inflight == 6  # within the default cap: all in flight


def test_abatched_generate_max_inflight_bounds_concurrency():
    model = AsyncSingle(delay=0.01)
    asyncio.run(abatched_generate(model, _prompts(6), max_inflight=2))
    assert 1 <= model.max_inflight <= 2


def test_abatched_generate_sync_batch_off_loop():
    model = SyncBatch()
    results = asyncio.run(abatched_generate(model, _prompts(3)))
    assert [r.answer for r in results] == ["s"] * 3


def test_abatched_generate_thread_pool_and_sequential():
    results = asyncio.run(abatched_generate(SyncOnly(), _prompts(3), max_workers=2))
    assert len(results) == 3
    results = asyncio.run(abatched_generate(SyncOnly(), _prompts(3)))
    assert len(results) == 3


def test_abatched_generate_misaligned_batch_raises():
    with pytest.raises(RuntimeError, match="misaligned-async"):
        asyncio.run(abatched_generate(MisalignedAsyncBatch(), _prompts(2)))


def test_sync_batched_generate_drives_async_only_models():
    model = AsyncSingle()
    results = batched_generate(model, _prompts(3))
    assert [r.answer for r in results] == ["a"] * 3
    assert model.calls == 3


def test_run_coroutine_inside_running_loop():
    async def inner():
        return 41

    async def outer():
        # A sync helper invoked from async code must not deadlock.
        return run_coroutine(inner()) + 1

    assert asyncio.run(outer()) == 42


# -- async parity on the shipped models --------------------------------------


def test_simulated_async_entry_points_match_sync():
    llm = SimulatedLLM()
    prompts = _prompts(3)
    sync_answers = [llm.generate(p).answer for p in prompts]
    async_one = [asyncio.run(llm.agenerate(p)).answer for p in prompts]
    async_batch = [
        r.answer for r in asyncio.run(llm.agenerate_batch(prompts))
    ]
    assert sync_answers == async_one == async_batch


def test_scripted_async_counts_calls_identically():
    llm = ScriptedLLM(default="d")
    asyncio.run(llm.agenerate_batch(_prompts(3)))
    assert llm.calls == 3


def test_caching_llm_async_batch_partitions_hits_and_misses():
    inner = AsyncBatch()
    cached = CachingLLM(inner)
    prompts = _prompts(4)
    first = asyncio.run(cached.agenerate_batch(prompts + prompts[:2]))
    assert len(first) == 6
    assert inner.calls == 4  # distinct misses only
    assert cached.stats.hits == 2 and cached.stats.misses == 4
    second = asyncio.run(cached.agenerate_batch(prompts))
    assert [r.answer for r in second] == [r.answer for r in first[:4]]
    assert inner.calls == 4  # all hits

    single = asyncio.run(cached.agenerate(prompts[0]))
    assert single.answer == first[0].answer
    assert inner.calls == 4


def test_caching_llm_agenerate_miss_reaches_inner_once():
    inner = AsyncSingle()
    cached = CachingLLM(inner)
    prompt = _prompts(1)[0]
    one = asyncio.run(cached.agenerate(prompt))
    two = asyncio.run(cached.agenerate(prompt))
    assert one is two
    assert inner.calls == 1


def test_caching_llm_forwards_max_inflight_to_inner_async_dispatch():
    inner = AsyncSingle(delay=0.01)
    cached = CachingLLM(inner, max_inflight=2)
    asyncio.run(cached.agenerate_batch(_prompts(6)))
    assert 1 <= inner.max_inflight <= 2


def test_sync_and_async_caching_paths_share_one_cache():
    inner = SyncBatch()
    cached = CachingLLM(inner)
    prompts = _prompts(2)
    cached.generate_batch(prompts)
    before = cached.stats.misses
    asyncio.run(cached.agenerate_batch(prompts))
    assert cached.stats.misses == before  # async pass was all hits


def test_default_inflight_cap_applies_when_unspecified(monkeypatch):
    """No caller-chosen bound never means unbounded fan-out."""
    import repro.llm.base as base

    monkeypatch.setattr(base, "DEFAULT_MAX_INFLIGHT", 3)
    model = AsyncSingle(delay=0.01)
    asyncio.run(abatched_generate(model, _prompts(9)))
    assert 1 <= model.max_inflight <= 3


def test_nonsensical_max_inflight_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        asyncio.run(abatched_generate(AsyncSingle(), _prompts(2), max_inflight=0))
