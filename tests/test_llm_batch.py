"""Batching contract tests: batched_generate dispatch + backend batches."""

import threading

import pytest

from repro.llm import PromptBuilder, ScriptedLLM, SimulatedLLM, batched_generate
from repro.llm.base import GenerationResult

BUILDER = PromptBuilder()


def _prompts(n):
    return [
        BUILDER.build("Who won the race?", [f"Runner {i} won the race in 201{i}."])
        for i in range(n)
    ]


class LoopOnlyModel:
    """A model without generate_batch (forces the fallback paths)."""

    def __init__(self):
        self.calls = 0
        self.threads = set()

    @property
    def name(self):
        return "loop-only"

    def generate(self, prompt):
        self.calls += 1
        self.threads.add(threading.get_ident())
        return GenerationResult(answer=f"len-{len(prompt)}", prompt=prompt)


class MisalignedModel:
    """Violates the alignment guarantee on purpose."""

    name = "misaligned"

    def generate(self, prompt):  # pragma: no cover - never reached
        raise AssertionError

    def generate_batch(self, prompts):
        return []


def test_batched_generate_empty_is_free():
    model = LoopOnlyModel()
    assert batched_generate(model, []) == []
    assert model.calls == 0


def test_batched_generate_sequential_fallback_preserves_order():
    model = LoopOnlyModel()
    prompts = _prompts(4)
    results = batched_generate(model, prompts)
    assert [r.prompt for r in results] == prompts
    assert model.calls == 4


def test_batched_generate_thread_pool_fallback():
    model = LoopOnlyModel()
    prompts = _prompts(6)
    results = batched_generate(model, prompts, max_workers=3)
    assert [r.prompt for r in results] == prompts
    assert model.calls == 6


def test_batched_generate_prefers_native_batch():
    class NativeModel(LoopOnlyModel):
        def __init__(self):
            super().__init__()
            self.batch_calls = 0

        def generate_batch(self, prompts):
            self.batch_calls += 1
            return [
                GenerationResult(answer="batched", prompt=p) for p in prompts
            ]

    model = NativeModel()
    results = batched_generate(model, _prompts(3), max_workers=4)
    assert model.batch_calls == 1
    assert model.calls == 0  # generate never used when a native batch exists
    assert all(r.answer == "batched" for r in results)


def test_batched_generate_rejects_misaligned_backend():
    with pytest.raises(RuntimeError):
        batched_generate(MisalignedModel(), _prompts(2))


def test_simulated_batch_matches_sequential():
    llm = SimulatedLLM()
    prompts = _prompts(5) + [BUILDER.build("Who won the race?", [])]
    sequential = [llm.generate(p) for p in prompts]
    batched = llm.generate_batch(prompts)
    assert [r.answer for r in batched] == [r.answer for r in sequential]
    assert [r.prompt for r in batched] == prompts
    # batch results keep full fidelity: attention + diagnostics present
    assert batched[0].attention is not None
    assert "intent" in batched[0].diagnostics


def test_scripted_batch_matches_sequential_and_counts_calls():
    llm = ScriptedLLM(answer_fn=lambda q, texts: f"{len(texts)} sources")
    prompts = [
        BUILDER.build("q?", [f"text {j}" for j in range(i)]) for i in range(4)
    ]
    batched = llm.generate_batch(prompts)
    assert [r.answer for r in batched] == [f"{i} sources" for i in range(4)]
    assert llm.calls == 4


def test_thread_pool_clamped_to_batch_size(monkeypatch):
    """Small batches must not spawn idle threads: the pool width is
    min(max_workers, len(prompts))."""
    import repro.llm.base as base

    captured = []
    real_pool = base.ThreadPoolExecutor

    class SpyPool(real_pool):
        def __init__(self, max_workers=None, **kwargs):
            captured.append(max_workers)
            super().__init__(max_workers=max_workers, **kwargs)

    monkeypatch.setattr(base, "ThreadPoolExecutor", SpyPool)
    model = LoopOnlyModel()
    results = batched_generate(model, _prompts(2), max_workers=8)
    assert len(results) == 2
    assert captured == [2]

    captured.clear()
    batched_generate(LoopOnlyModel(), _prompts(6), max_workers=4)
    assert captured == [4]


def test_single_prompt_never_builds_a_pool(monkeypatch):
    import repro.llm.base as base

    def explode(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("no pool for a single prompt")

    monkeypatch.setattr(base, "ThreadPoolExecutor", explode)
    model = LoopOnlyModel()
    results = batched_generate(model, _prompts(1), max_workers=8)
    assert len(results) == 1
