"""Permutation counterfactual search tests."""

import pytest

from repro.core import (
    ContextEvaluator,
    ranked_permutations,
    search_permutation_counterfactual,
)
from repro.core.context import Context
from repro.errors import SearchBudgetError
from repro.retrieval import Document


def test_ranked_permutations_order(big_three_context):
    ranked = ranked_permutations(big_three_context)
    taus = [tau for _, tau in ranked]
    assert taus == sorted(taus, reverse=True)
    assert len(ranked) == 24 - 1  # identity excluded
    # the very first candidates are adjacent transpositions (max tau);
    # ties keep the lexicographic-by-position generator order, whose
    # first inversion-1 permutation swaps the last two positions.
    first_order, first_tau = ranked[0]
    assert first_tau == pytest.approx(1 - 2 / 6)
    ids = big_three_context.doc_ids()
    assert first_order == (ids[0], ids[1], ids[3], ids[2])
    swaps = {tuple(order) for order, tau in ranked[:3]}
    assert (ids[1], ids[0], ids[2], ids[3]) in swaps


def test_use_case_1_flip(big_three_engine, big_three_context):
    """Moving the match-wins doc to position 2 flips to Djokovic."""
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    result = search_permutation_counterfactual(evaluator)
    assert result.found
    cf = result.counterfactual
    ids = big_three_context.doc_ids()
    assert cf.perturbation.order == (ids[1], ids[0], ids[2], ids[3])
    assert cf.new_answer == "Novak Djokovic"
    assert cf.tau == pytest.approx(1 - 2 / 6)
    assert set(cf.moved_sources) == {ids[0], ids[1]}


def test_use_case_2_flip(us_open_engine, us_open):
    context = us_open_engine.retrieve(us_open.query)
    evaluator = ContextEvaluator(us_open_engine.llm, context)
    result = search_permutation_counterfactual(evaluator)
    assert result.found
    cf = result.counterfactual
    assert cf.new_answer == "Iga Swiatek"
    # the 2023 document moved out of the last position
    assert cf.perturbation.order[-1] != "usopen-2023"


def test_found_flip_maximizes_tau(us_open_engine, us_open):
    """No permutation with strictly higher tau may also flip."""
    context = us_open_engine.retrieve(us_open.query)
    evaluator = ContextEvaluator(us_open_engine.llm, context)
    result = search_permutation_counterfactual(evaluator, keep_trail=True)
    flip_tau = result.counterfactual.tau
    for order, tau, answer in result.trail:
        if tau > flip_tau:
            assert answer == result.baseline_answer


def test_stable_context_finds_nothing(potya_engine, player_of_the_year):
    """Use Case 3 is order-stable: k=10 > cap, so build a k<=8 slice."""
    context = potya_engine.retrieve(player_of_the_year.query)
    small = Context.from_documents(
        player_of_the_year.query,
        [context.document(d) for d in context.doc_ids()[:5]],
    )
    evaluator = ContextEvaluator(potya_engine.llm, small)
    result = search_permutation_counterfactual(evaluator)
    assert not result.found
    assert result.num_evaluations == 5 * 4 * 3 * 2 - 1


def test_target_answer(us_open_engine, us_open):
    context = us_open_engine.retrieve(us_open.query)
    evaluator = ContextEvaluator(us_open_engine.llm, context)
    result = search_permutation_counterfactual(evaluator, target_answer="Iga Swiatek")
    assert result.found
    assert result.counterfactual.new_answer == "Iga Swiatek"


def test_budget_exhaustion(big_three_engine, big_three):
    """A tiny budget over a stable prefix exhausts without finding."""
    context = big_three_engine.retrieve(big_three.query)
    evaluator = ContextEvaluator(big_three_engine.llm, context)
    result = search_permutation_counterfactual(evaluator, max_evaluations=1)
    # the first candidate IS the flip for use case 1, so it is found;
    # force exhaustion with an impossible target instead
    result = search_permutation_counterfactual(
        evaluator, target_answer="Nobody", max_evaluations=5
    )
    assert not result.found
    assert result.budget_exhausted


def test_large_context_rejected_when_exhaustive_forced():
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(9)]
    context = Context.from_documents("q", docs)

    class _Stub:
        name = "stub"

        def generate(self, prompt):
            raise AssertionError("should not be called")

    evaluator = ContextEvaluator(_Stub(), context)
    with pytest.raises(SearchBudgetError):
        search_permutation_counterfactual(evaluator, lazy=False)


def test_large_context_lazy_mode():
    """k=9 (9! = 362880) works lazily within a small budget."""
    from repro.llm import ScriptedLLM

    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(9)]
    context = Context.from_documents("q", docs)
    # flips as soon as the first source leaves position 1
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: "base" if not texts or texts[0] == "text 0" else "flip"
    )
    evaluator = ContextEvaluator(llm, context)
    result = search_permutation_counterfactual(evaluator, max_evaluations=100)
    assert result.found
    assert result.counterfactual.new_answer == "flip"
    # the minimal change is one adjacent transposition involving position 1
    assert result.counterfactual.tau == pytest.approx(
        1 - 2 * 1 / (9 * 8 / 2)
    )
    assert result.num_evaluations <= 10


def test_lazy_and_exhaustive_agree_on_small_context(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    exhaustive = search_permutation_counterfactual(evaluator, lazy=False)
    lazy = search_permutation_counterfactual(evaluator, lazy=True)
    assert exhaustive.found and lazy.found
    assert exhaustive.counterfactual.tau == pytest.approx(lazy.counterfactual.tau)
    assert exhaustive.counterfactual.new_answer == lazy.counterfactual.new_answer


def test_invalid_budget(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    with pytest.raises(SearchBudgetError):
        search_permutation_counterfactual(evaluator, max_evaluations=0)
    with pytest.raises(SearchBudgetError):
        search_permutation_counterfactual(evaluator, batch_size=0)


def test_budget_counts_real_llm_calls_not_memo_hits():
    """Regression: a warm evaluator (e.g. after permutation insights)
    used to burn the whole budget on memoized orders."""
    from repro.llm import ScriptedLLM

    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(4)]
    context = Context.from_documents("q?", docs)
    # flips only when the first two sources swap — an adjacent
    # transposition tried *after* the (0-indexed) last-pair swap within
    # the max-tau tie, i.e. beyond a budget of 1
    llm = ScriptedLLM(
        answer_fn=lambda q, texts: "flip"
        if texts == ("text 1", "text 0", "text 2", "text 3")
        else "base"
    )
    evaluator = ContextEvaluator(llm, context)
    # warm the memo with every permutation (an insight analysis would)
    from itertools import permutations as iter_permutations

    evaluator.evaluate_many(list(iter_permutations(context.doc_ids())))
    calls = evaluator.llm_calls
    result = search_permutation_counterfactual(evaluator, max_evaluations=1)
    assert result.found  # pre-fix: exhausted on memoized candidates
    assert not result.budget_exhausted
    assert result.num_evaluations == 0
    assert evaluator.llm_calls == calls


def test_batched_search_matches_serial_result(us_open_engine, us_open):
    context = us_open_engine.retrieve(us_open.query)
    serial = search_permutation_counterfactual(
        ContextEvaluator(us_open_engine.llm, context), batch_size=1
    )
    batched = search_permutation_counterfactual(
        ContextEvaluator(us_open_engine.llm, context), batch_size=16
    )
    assert serial.found and batched.found
    assert serial.counterfactual.tau == pytest.approx(batched.counterfactual.tau)
    assert serial.counterfactual.new_answer == batched.counterfactual.new_answer
