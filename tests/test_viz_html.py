"""Static HTML report tests."""

import html.parser

import pytest

from repro.viz import render_report_html, write_report_html


class _Validator(html.parser.HTMLParser):
    """Collects tag balance and text for structural checks."""

    VOID = {"meta", "br", "hr", "img", "input", "link", "path", "circle"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []
        self.text = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}>")
        else:
            self.stack.pop()

    def handle_data(self, data):
        self.text.append(data)


@pytest.fixture(scope="module")
def report(big_three):
    from tests.conftest import make_engine

    engine = make_engine(big_three)
    return engine.explain(big_three.query)


@pytest.fixture(scope="module")
def page(report):
    return render_report_html(report)


def test_html_is_well_formed(page):
    validator = _Validator()
    validator.feed(page)
    assert validator.errors == []
    assert validator.stack == []


def test_html_contains_answer_and_rules(page):
    assert "Roger Federer" in page
    assert "bigthree-1-match-wins" in page
    assert "Counterfactual explanations" in page


def test_html_has_svg_pie(page):
    assert "<svg" in page
    assert "path d=" in page or "circle" in page


def test_html_escapes_content(big_three):
    from repro.core.insights import AnswerSlice
    from repro.viz.html import _legend

    legend = _legend([AnswerSlice(answer="<script>x</script>", count=1, fraction=1.0)])
    assert "<script>" not in legend
    assert "&lt;script&gt;" in legend


def test_single_answer_pie_is_full_circle():
    from repro.core.insights import AnswerSlice
    from repro.viz.html import _svg_pie

    svg = _svg_pie([AnswerSlice(answer="only", count=4, fraction=1.0)])
    assert "circle" in svg


def test_write_report_html(tmp_path, report):
    path = tmp_path / "report.html"
    write_report_html(report, str(path))
    content = path.read_text(encoding="utf-8")
    assert content.startswith("<!doctype html>")
    assert "RAGE explanation report" in content


def test_optimal_section_present(page):
    assert "Optimal permutations" in page
