"""ASCII rendering tests."""

from repro.core import ContextEvaluator, SearchDirection, analyze_combinations, select_combinations
from repro.viz import (
    render_combination_counterfactual,
    render_combination_insights,
    render_optimal_permutations,
    render_permutation_counterfactual,
    render_permutation_insights,
    render_pie,
    render_table,
)
from repro.core.insights import AnswerSlice


def test_render_table_alignment():
    text = render_table(("name", "value"), [("a", "1"), ("longer", "22")])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4


def test_render_pie_percentages():
    slices = [
        AnswerSlice(answer="A", count=3, fraction=0.75),
        AnswerSlice(answer="B", count=1, fraction=0.25),
    ]
    text = render_pie(slices)
    assert "75.0%" in text and "25.0%" in text
    assert text.index("A") < text.index("B")


def test_render_pie_empty():
    assert "no answers" in render_pie([])


def test_render_combination_insights(big_three_engine, big_three):
    insights = big_three_engine.combination_insights(big_three.query)
    text = render_combination_insights(insights)
    assert "Roger Federer" in text
    assert "bigthree-1-match-wins" in text
    assert "Answer rules:" in text
    assert "Answer distribution:" in text


def test_render_combination_insights_truncation(big_three_engine, big_three):
    insights = big_three_engine.combination_insights(big_three.query)
    text = render_combination_insights(insights, max_rows=3)
    assert "more rows" in text


def test_render_permutation_insights(us_open_engine, us_open):
    insights = us_open_engine.permutation_insights(us_open.query, sample_size=20)
    text = render_permutation_insights(insights)
    assert "Positional rules:" in text or "no rules" in text
    assert "Coco Gauff" in text


def test_render_permutation_insights_stability(potya_engine, player_of_the_year):
    insights = potya_engine.permutation_insights(player_of_the_year.query, sample_size=10)
    text = render_permutation_insights(insights)
    assert "stable" in text


def test_render_combination_counterfactual_found(big_three_engine, big_three):
    result = big_three_engine.combination_counterfactual(big_three.query)
    text = render_combination_counterfactual(result)
    assert "removing" in text
    assert "Novak Djokovic" in text


def test_render_bottom_up_counterfactual(big_three_engine, big_three):
    result = big_three_engine.combination_counterfactual(
        big_three.query, direction=SearchDirection.BOTTOM_UP
    )
    text = render_combination_counterfactual(result)
    assert "retaining only" in text


def test_render_counterfactual_not_found(big_three_engine, big_three):
    result = big_three_engine.combination_counterfactual(
        big_three.query, target_answer="Nobody Real"
    )
    text = render_combination_counterfactual(result)
    assert "not found" in text


def test_render_permutation_counterfactual(big_three_engine, big_three):
    result = big_three_engine.permutation_counterfactual(big_three.query)
    text = render_permutation_counterfactual(result)
    assert "Kendall tau" in text
    assert "reorder to" in text


def test_render_optimal(big_three_engine, big_three):
    placements = big_three_engine.optimal_permutations(big_three.query, s=3)
    text = render_optimal_permutations(placements)
    assert "rank" in text
    assert text.count(">") >= 3
