"""Tokenizer and span tests."""

import pytest

from repro.textproc import Span, Tokenizer, ngrams, word_spans


def test_word_spans_offsets():
    text = "Hello, world! Don't panic."
    spans = word_spans(text)
    assert [s.text for s in spans] == ["Hello", "world", "Dont", "panic"]
    for span in spans:
        # The span region covers the token (apostrophes may pad it).
        assert text[span.start : span.end].replace("'", "") == span.text


def test_word_spans_possessive_folding():
    spans = word_spans("Djokovic's racket")
    assert spans[0].text == "Djokovics"


def test_span_length():
    span = Span(text="abc", start=4, end=7)
    assert len(span) == 3


def test_default_tokenizer_pipeline():
    tokenizer = Tokenizer()
    terms = tokenizer.tokenize("The players were winning championships")
    assert "the" not in terms          # stopword removed
    assert "were" not in terms         # stopword removed
    assert "player" in terms           # stemmed
    assert "win" in terms              # stemmed
    assert any(t.startswith("championship") for t in terms)


def test_tokenizer_no_stem():
    tokenizer = Tokenizer(stem=False)
    assert tokenizer.tokenize("winning games") == ["winning", "games"]


def test_tokenizer_keep_stopwords():
    tokenizer = Tokenizer(remove_stopwords=False, stem=False)
    assert tokenizer.tokenize("the fox") == ["the", "fox"]


def test_tokenizer_accent_folding():
    tokenizer = Tokenizer(stem=False)
    assert tokenizer.tokenize("Świątek café") == ["swiatek", "cafe"]


def test_tokenizer_numbers_kept():
    tokenizer = Tokenizer()
    assert "2023" in tokenizer.tokenize("the 2023 championship")


def test_tokenize_unique():
    tokenizer = Tokenizer(stem=False)
    assert tokenizer.tokenize_unique("fox fox dog") == {"fox", "dog"}


def test_tokenizer_callable():
    tokenizer = Tokenizer(stem=False)
    assert tokenizer("fox dog") == ["fox", "dog"]


def test_ngrams():
    assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]
    assert list(ngrams(["a"], 2)) == []


def test_ngrams_invalid_n():
    with pytest.raises(ValueError):
        list(ngrams(["a"], 0))


def test_empty_text():
    assert Tokenizer().tokenize("") == []
    assert word_spans("") == []


def test_punctuation_only():
    assert Tokenizer().tokenize("!!! ... ???") == []
