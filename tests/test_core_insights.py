"""Combination/permutation insight analysis tests."""

import pytest

from repro.core import (
    ContextEvaluator,
    analyze_combinations,
    analyze_permutations,
    select_combinations,
    select_permutations,
)
from repro.textproc import normalize_answer


@pytest.fixture()
def big_three_insights(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    perturbations = select_combinations(big_three_context)
    return analyze_combinations(evaluator, perturbations)


def test_combination_totals(big_three_insights):
    assert big_three_insights.total == 2**4 - 1  # empty excluded by default


def test_pie_fractions_sum_to_one(big_three_insights):
    pie = big_three_insights.pie()
    assert sum(s.fraction for s in pie) == pytest.approx(1.0)
    assert pie == sorted(pie, key=lambda s: -s.count)


def test_figure_2_distribution(big_three_insights):
    """Fig. 2 content: three answers, Federer most frequent."""
    pie = big_three_insights.pie()
    answers = [s.answer for s in pie]
    assert answers[0] == "Roger Federer"
    assert set(answers) == {"Roger Federer", "Novak Djokovic", "Rafael Nadal"}


def test_federer_rule_matches_paper(big_three_insights):
    rule = big_three_insights.rule_for("Roger Federer")
    assert rule is not None
    assert rule.required_sources == ("bigthree-1-match-wins",)
    assert "bigthree-1-match-wins" in rule.describe()


def test_rules_are_sound(big_three_insights):
    """Every rule source must appear in every combination of its answer."""
    for rule in big_three_insights.rules:
        key = normalize_answer(rule.answer)
        for combo in big_three_insights.groups[key]:
            assert set(rule.required_sources) <= set(combo.kept)


def test_rules_are_maximal(big_three_insights):
    """No source outside the rule appears in every combination."""
    for rule in big_three_insights.rules:
        key = normalize_answer(rule.answer)
        combos = big_three_insights.groups[key]
        universe = set(big_three_insights.groups)  # just to touch it
        all_ids = set().union(*(set(c.kept) for c in combos))
        for doc_id in all_ids - set(rule.required_sources):
            assert any(doc_id not in set(c.kept) for c in combos)


def test_exclusion_rule_for_djokovic(big_three_insights):
    """Extension: Djokovic only wins when the match-wins doc is absent."""
    rule = big_three_insights.rule_for("Novak Djokovic")
    assert rule is not None
    assert rule.required_sources == ()
    assert rule.excluded_sources == ("bigthree-1-match-wins",)
    assert "excluded" in rule.describe()


def test_exclusion_rules_are_sound(big_three_insights):
    """Excluded sources never appear in the answer's combinations and do
    appear in some other answer's combination."""
    for rule in big_three_insights.rules:
        key = normalize_answer(rule.answer)
        for combo in big_three_insights.groups[key]:
            assert not (set(rule.excluded_sources) & set(combo.kept))
        for doc_id in rule.excluded_sources:
            assert any(
                doc_id in set(combo.kept)
                for other_key, combos in big_three_insights.groups.items()
                if other_key != key
                for combo in combos
            )


def test_answer_table_rows(big_three_insights):
    rows = big_three_insights.answer_table()
    assert len(rows) == big_three_insights.total
    # grouped: all rows of the most frequent answer come first
    first_answer = rows[0][0]
    first_block = [r for r in rows if r[0] == first_answer]
    assert rows[: len(first_block)] == first_block


def test_rule_for_unknown_answer(big_three_insights):
    assert big_three_insights.rule_for("Serena Williams") is None


def test_num_evaluations_counted(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    perturbations = select_combinations(big_three_context)
    insights = analyze_combinations(evaluator, perturbations)
    assert insights.num_evaluations == insights.total


def test_permutation_insights_use_case_2(us_open_engine, us_open):
    context = us_open_engine.retrieve(us_open.query)
    evaluator = ContextEvaluator(us_open_engine.llm, context)
    perturbations = select_permutations(context, sample_size=60, seed=1)
    insights = analyze_permutations(evaluator, perturbations)
    answers = {s.answer for s in insights.pie()}
    assert "Coco Gauff" in answers
    assert "Iga Swiatek" in answers  # the paper's out-of-date confusion
    assert not insights.is_stable


def test_permutation_insights_stability_use_case_3(potya_engine, player_of_the_year):
    context = potya_engine.retrieve(player_of_the_year.query)
    evaluator = ContextEvaluator(potya_engine.llm, context)
    perturbations = select_permutations(context, sample_size=25, seed=2)
    insights = analyze_permutations(evaluator, perturbations)
    assert insights.is_stable
    assert insights.pie()[0].answer == "5"
    assert insights.rules == []  # "no rules were found" (paper III-D)


def test_permutation_rules_sound(us_open_engine, us_open):
    context = us_open_engine.retrieve(us_open.query)
    evaluator = ContextEvaluator(us_open_engine.llm, context)
    perturbations = select_permutations(context, sample_size=40, seed=3)
    insights = analyze_permutations(evaluator, perturbations)
    for rule in insights.rules:
        key = normalize_answer(rule.answer)
        for perm in insights.groups[key]:
            for position, doc_id in rule.fixed_positions:
                assert perm.order[position] == doc_id


def test_permutation_rule_not_emitted_for_fully_pinned_singleton(
    us_open_engine, us_open
):
    context = us_open_engine.retrieve(us_open.query)
    evaluator = ContextEvaluator(us_open_engine.llm, context)
    perturbations = select_permutations(context, sample_size=200, seed=4)
    insights = analyze_permutations(evaluator, perturbations)
    k = context.k
    for rule in insights.rules:
        key = normalize_answer(rule.answer)
        if len(insights.groups[key]) == 1:
            assert len(rule.fixed_positions) < k


def test_empty_perturbation_context_answer(big_three_engine, big_three_context):
    evaluator = ContextEvaluator(big_three_engine.llm, big_three_context)
    perturbations = select_combinations(big_three_context, include_empty=True)
    insights = analyze_combinations(evaluator, perturbations)
    assert insights.total == 2**4
    # the empty combination answers from parametric knowledge (Djokovic)
    key = normalize_answer("Novak Djokovic")
    assert any(p.kept == () for p in insights.groups[key])
