"""Optimal permutation (assignment formulation) tests."""

import itertools
import random

import pytest

from repro.attention import PositionPrior, position_weights
from repro.core import naive_optimal_permutations, optimal_permutations
from repro.core.context import Context
from repro.core.optimal import benefit_matrix
from repro.errors import ConfigError
from repro.retrieval import Document


def _context(k):
    docs = [Document(doc_id=f"d{i}", text=f"text {i}") for i in range(k)]
    return Context.from_documents("q", docs)


def _scores(k, seed=0):
    rng = random.Random(seed)
    return {f"d{i}": rng.uniform(0.1, 1.0) for i in range(k)}


def test_benefit_matrix_shape():
    context = _context(3)
    weights = position_weights(PositionPrior.V_SHAPED, 3, depth=0.8)
    matrix = benefit_matrix(context, _scores(3), weights)
    assert len(matrix) == 3 and all(len(row) == 3 for row in matrix)


def test_benefit_matrix_weight_mismatch():
    with pytest.raises(ConfigError):
        benefit_matrix(_context(3), _scores(3), [0.5, 0.5])


def test_top1_places_most_relevant_at_highest_attention():
    context = _context(5)
    scores = {"d0": 0.1, "d1": 0.9, "d2": 0.2, "d3": 0.3, "d4": 0.4}
    best = optimal_permutations(context, scores, s=1, depth=0.8)[0]
    weights = position_weights(PositionPrior.V_SHAPED, 5, depth=0.8)
    top_positions = sorted(range(5), key=lambda p: -weights[p])[:2]
    position_of_d1 = best.order.index("d1")
    assert position_of_d1 in top_positions


def test_matches_naive_enumeration():
    rng = random.Random(3)
    for trial in range(10):
        k = rng.randint(2, 5)
        context = _context(k)
        scores = {f"d{i}": rng.uniform(0.0, 1.0) for i in range(k)}
        weights = position_weights(PositionPrior.V_SHAPED, k, depth=0.7)
        s = rng.randint(1, 6)
        fast = optimal_permutations(
            context, scores, s=s, attention_weights=weights
        )
        naive = naive_optimal_permutations(context, scores, s, weights)
        assert [round(p.score, 9) for p in fast] == [
            round(p.score, 9) for p in naive
        ]


def test_ch_and_murty_methods_agree():
    context = _context(6)
    scores = _scores(6, seed=4)
    ch = optimal_permutations(context, scores, s=8, method="ch")
    murty = optimal_permutations(context, scores, s=8, method="murty")
    assert [round(p.score, 9) for p in ch] == [round(p.score, 9) for p in murty]


def test_scores_nonincreasing():
    context = _context(5)
    placements = optimal_permutations(context, _scores(5), s=10)
    values = [p.score for p in placements]
    assert values == sorted(values, reverse=True)


def test_orders_are_valid_permutations():
    context = _context(5)
    for placement in optimal_permutations(context, _scores(5), s=5):
        placement.perturbation.validate(context)
        assert sorted(placement.order) == sorted(context.doc_ids())


def test_orders_are_distinct():
    context = _context(4)
    placements = optimal_permutations(context, _scores(4), s=10)
    orders = [p.order for p in placements]
    assert len(set(orders)) == len(orders)


def test_custom_attention_weights():
    context = _context(3)
    scores = {"d0": 1.0, "d1": 0.5, "d2": 0.1}
    # all attention on the last position: best order puts d0 last
    best = optimal_permutations(
        context, scores, s=1, attention_weights=[0.0, 0.0, 1.0]
    )[0]
    assert best.order[2] == "d0"


def test_uniform_prior_all_orders_tie():
    context = _context(3)
    scores = _scores(3)
    placements = optimal_permutations(
        context, scores, s=6, prior=PositionPrior.UNIFORM
    )
    values = {round(p.score, 9) for p in placements}
    assert len(values) == 1  # order cannot matter under uniform attention


def test_invalid_inputs():
    with pytest.raises(ConfigError):
        optimal_permutations(_context(3), _scores(3), s=0)
    with pytest.raises(ConfigError):
        optimal_permutations(_context(3), _scores(3), s=1, method="bogus")


def test_s_larger_than_space():
    context = _context(3)
    placements = optimal_permutations(context, _scores(3), s=100)
    assert len(placements) == len(list(itertools.permutations("abc")))
