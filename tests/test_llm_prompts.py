"""Prompt building and parsing round-trip tests."""

import pytest

from repro.errors import PromptError
from repro.llm import PromptBuilder, parse_prompt

BUILDER = PromptBuilder()


def test_roundtrip_with_sources():
    question = "Who won the race?"
    sources = ["Alpha won the race in 2020.", "Beta won the race in 2021."]
    prompt = BUILDER.build(question, sources)
    parsed = parse_prompt(prompt)
    assert parsed.question == question
    assert parsed.source_texts == sources
    assert parsed.k == 2


def test_roundtrip_empty_context():
    prompt = BUILDER.build("Who won?", [])
    parsed = parse_prompt(prompt)
    assert parsed.question == "Who won?"
    assert parsed.source_texts == []
    assert "No sources are provided" in prompt


def test_sources_are_numbered_from_one():
    prompt = BUILDER.build("q?", ["first", "second", "third"])
    assert "[Source 1] first" in prompt
    assert "[Source 2] second" in prompt
    assert "[Source 3] third" in prompt


def test_order_is_preserved():
    a = BUILDER.build("q?", ["x", "y"])
    b = BUILDER.build("q?", ["y", "x"])
    assert a != b
    assert parse_prompt(a).source_texts == ["x", "y"]
    assert parse_prompt(b).source_texts == ["y", "x"]


def test_multiline_sources_folded():
    prompt = BUILDER.build("q?", ["line one\nline two"])
    parsed = parse_prompt(prompt)
    assert parsed.source_texts == ["line one line two"]


def test_multiline_question_folded():
    prompt = BUILDER.build("who\nwon?", ["text"])
    assert parse_prompt(prompt).question == "who won?"


def test_empty_question_rejected():
    with pytest.raises(PromptError):
        BUILDER.build("   ", ["text"])


def test_empty_source_rejected():
    with pytest.raises(PromptError):
        BUILDER.build("q?", ["ok", "  "])


def test_parse_rejects_missing_question():
    with pytest.raises(PromptError):
        parse_prompt("[Source 1] text only")


def test_parse_rejects_broken_numbering():
    prompt = "\n".join(
        ["header", "", "[Source 1] a", "[Source 3] b", "", "Question: q?", "Answer:"]
    )
    with pytest.raises(PromptError):
        parse_prompt(prompt)


def test_prompt_instructs_source_use():
    prompt = BUILDER.build("q?", ["text"])
    assert "delimited sources" in prompt
