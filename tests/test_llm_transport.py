"""Transport-layer suites: token bucket, backoff policy, retry loop.

Everything here is hermetic: either pure (injected clocks, scripted
transports) or loopback-only (the in-process fake server).  The
network guard in ``conftest`` guarantees the latter stays true.
"""

from __future__ import annotations

import asyncio
import random
import time
from datetime import datetime, timedelta, timezone

import pytest

from fakes import FakeLLMServer, Fault
from fakes.loopback import raw_connect, refused_tcp_port
from fakes.network_guard import NetworkGuardViolation

from repro.errors import (
    ConfigError,
    HttpStatusError,
    MalformedResponseError,
    TransportError,
    TransportTimeoutError,
)
from repro.llm.transport import (
    HttpClient,
    HttpResponse,
    HttpTransport,
    RetryPolicy,
    TokenBucket,
    UrllibTransport,
)


class FakeClock:
    """Deterministic monotonic clock for bucket tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# TokenBucket


def test_bucket_burst_then_spacing():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
    assert [bucket.reserve() for _ in range(3)] == [0.0, 0.0, 0.0]
    # Exhausted: the next arrivals are scheduled 1/rate apart, FIFO.
    assert bucket.reserve() == pytest.approx(0.1)
    assert bucket.reserve() == pytest.approx(0.2)


def test_bucket_refills_with_time():
    clock = FakeClock()
    bucket = TokenBucket(rate=5.0, burst=2, clock=clock)
    bucket.reserve(), bucket.reserve()
    clock.advance(1.0)  # refills 5, capped at burst=2
    assert bucket.reserve() == 0.0
    assert bucket.reserve() == 0.0
    assert bucket.reserve() == pytest.approx(0.2)


def test_bucket_never_exceeds_rate_property():
    """Admissions in any window W never exceed burst + rate * W."""
    rng = random.Random(7)
    for trial in range(20):
        rate = rng.choice([1.0, 3.0, 10.0, 50.0])
        burst = rng.randint(1, 8)
        clock = FakeClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        admissions = []
        for _ in range(60):
            clock.advance(rng.random() * (2.0 / rate))
            arrival = clock.now
            admissions.append(arrival + bucket.reserve())
        admissions.sort()
        for window in (0.5, 1.0, 3.0):
            for i, start in enumerate(admissions):
                inside = sum(1 for t in admissions if start <= t <= start + window)
                assert inside <= burst + rate * window + 1e-6, (
                    f"trial {trial}: {inside} admissions in {window}s "
                    f"window at rate {rate}, burst {burst}"
                )


def test_bucket_fifo_fairness():
    """Arrival order is admission order — no caller can be starved."""
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
    waits = [bucket.reserve() for _ in range(10)]
    admissions = [clock.now + wait for wait in waits]
    assert admissions == sorted(admissions)
    # Strictly increasing past the burst: every later arrival is
    # admitted strictly after every earlier one.
    spaced = admissions[1:]
    assert all(b > a for a, b in zip(spaced, spaced[1:]))


def test_bucket_fairness_under_async_concurrency():
    """N concurrent tasks all complete, in arrival order, rate-bounded."""
    bucket = TokenBucket(rate=200.0, burst=2)
    order = []

    async def worker(index: int) -> None:
        await bucket.aacquire()
        order.append((time.monotonic(), index))

    async def main() -> None:
        await asyncio.gather(*(worker(i) for i in range(12)))

    asyncio.run(main())
    assert sorted(i for _, i in order) == list(range(12))
    stamps = sorted(t for t, _ in order)
    # 12 admissions at 200 rps with burst 2 need >= 10/200 s of spacing.
    assert stamps[-1] - stamps[0] >= 10 / 200.0 * 0.5  # generous margin


def test_bucket_validation():
    with pytest.raises(ConfigError):
        TokenBucket(rate=0.0)
    with pytest.raises(ConfigError):
        TokenBucket(rate=1.0, burst=0)


def test_bucket_cancel_refunds_reservation():
    """Regression: a reserved-but-abandoned slot must be refunded.

    Before the fix, reserve() permanently consumed the slot even when
    the caller never proceeded, so N abandoned reservations starved
    the N+1th arrival forever.
    """
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
    # N waiters reserve past the burst, then all abandon their slot.
    waits = [bucket.reserve() for _ in range(8)]
    assert waits[2] > 0.0  # the bucket really was exhausted
    for _ in range(8):
        bucket.cancel()
    # The N+1th arrival is admitted immediately: nothing leaked.
    assert bucket.reserve() == 0.0
    assert bucket.reserve() == 0.0
    assert bucket.reserve() == pytest.approx(1.0)


def test_bucket_cancel_clamps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
    bucket.reserve()
    clock.advance(10.0)  # refill replaces the slot before the refund
    bucket.cancel()
    bucket.cancel()  # spurious extra refunds must not mint capacity
    assert [bucket.reserve() for _ in range(2)] == [0.0, 0.0]
    assert bucket.reserve() > 0.0


def test_bucket_try_acquire_admits_then_rejects_with_retry_after():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
    assert bucket.try_acquire() == (True, 0.0)
    assert bucket.try_acquire() == (True, 0.0)
    admitted, wait = bucket.try_acquire()
    assert not admitted and wait == pytest.approx(0.5)
    # Rejections are refunded: the advertised wait must not grow with
    # every rejected probe (the reservation-leak symptom), and waiting
    # out the advertised delay really buys admission.
    admitted, wait2 = bucket.try_acquire()
    assert not admitted and wait2 == pytest.approx(wait)
    clock.advance(wait)
    assert bucket.try_acquire() == (True, 0.0)


def test_bucket_async_cancellation_refunds():
    """A task cancelled while sleeping out its wait refunds its slot."""

    async def main() -> None:
        bucket = TokenBucket(rate=5.0, burst=1)
        await bucket.aacquire()  # drain the burst
        waiters = [asyncio.create_task(bucket.aacquire()) for _ in range(6)]
        await asyncio.sleep(0)  # let every waiter reserve its slot
        for task in waiters:
            task.cancel()
        for task in waiters:
            with pytest.raises(asyncio.CancelledError):
                await task
        # All six abandoned reservations were refunded: the next
        # arrival waits only for the one slot actually consumed.
        wait = bucket.reserve()
        assert wait <= 1 / 5.0 + 0.05
        bucket.cancel()

    asyncio.run(main())


def test_bucket_sync_acquire_refunds_on_interrupted_sleep():
    """Regression: acquire() leaked its reservation when the sleep
    raised (KeyboardInterrupt, an injected deadline) — the sync twin of
    the async cancellation leak.  The slot must be refunded so the
    interrupted caller does not shrink the bucket forever."""

    class Boom(BaseException):
        pass

    def exploding_sleep(_seconds):
        raise Boom

    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=1, clock=clock, sleep=exploding_sleep)
    assert bucket.acquire() == 0.0  # drain the burst, no sleep needed
    for _ in range(3):
        with pytest.raises(Boom):
            bucket.acquire()
    # All interrupted reservations were refunded: the next arrival
    # waits only for the one slot actually consumed, not 1 + 3 leaks.
    assert bucket.reserve() == pytest.approx(1.0)


def test_bucket_try_acquire_refunds_on_interrupted_sleep():
    class Boom(BaseException):
        pass

    def exploding_sleep(_seconds):
        raise Boom

    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=1, clock=clock, sleep=exploding_sleep)
    assert bucket.try_acquire() == (True, 0.0)
    with pytest.raises(Boom):
        bucket.try_acquire(max_wait=10.0)  # admitted, then sleep raises
    assert bucket.reserve() == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# RetryPolicy schedule properties


def test_backoff_bounded_and_jittered():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.25)
    rng = random.Random(3)
    for attempt in range(1, 30):
        delay = policy.backoff(attempt, rng)
        base = min(0.1 * 2.0 ** (attempt - 1), 1.0)
        assert base <= delay <= base * 1.25 + 1e-12
        assert delay <= 1.0 * 1.25 + 1e-12  # global cap


def test_backoff_monotone_up_to_cap_without_jitter():
    policy = RetryPolicy(base_delay=0.05, multiplier=3.0, max_delay=0.9, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.backoff(n, rng) for n in range(1, 12)]
    assert delays == sorted(delays)
    assert delays[-1] == pytest.approx(0.9)  # capped, stays capped
    assert delays[-1] == delays[-2]


def test_backoff_jitter_distribution_property():
    """Jitter stays within its band across seeds and attempts."""
    rng = random.Random(99)
    for _ in range(200):
        base_delay = rng.uniform(0.01, 0.5)
        jitter = rng.uniform(0.0, 1.0)
        policy = RetryPolicy(base_delay=base_delay, jitter=jitter, max_delay=5.0)
        attempt = rng.randint(1, 6)
        base = min(base_delay * 2.0 ** (attempt - 1), 5.0)
        delay = policy.backoff(attempt, rng)
        assert base <= delay <= base * (1 + jitter) + 1e-12


def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ConfigError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigError):
        RetryPolicy(jitter=-1.0)


# ---------------------------------------------------------------------------
# HttpClient retry loop (scripted transport, no sockets)


class ScriptedTransport(HttpTransport):
    """Replays a list of responses/exceptions; records every request."""

    def __init__(self, outcomes) -> None:
        self.outcomes = list(outcomes)
        self.requests = []

    def request(self, method, url, headers, body, timeout):
        self.requests.append(
            {"method": method, "url": url, "headers": dict(headers),
             "body": body, "timeout": timeout}
        )
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _ok(payload: bytes = b'{"answer": 1}') -> HttpResponse:
    return HttpResponse(200, {}, payload)


def _status(code: int, retry_after=None) -> HttpResponse:
    headers = {"retry-after": str(retry_after)} if retry_after is not None else {}
    return HttpResponse(code, headers, b'{"error": "x"}')


def _sleepless(monkeypatch):
    """Record sleeps instead of paying them."""
    slept = []
    monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
    return slept


def test_client_retries_5xx_then_succeeds(monkeypatch):
    slept = _sleepless(monkeypatch)
    transport = ScriptedTransport([_status(503), _status(500), _ok()])
    client = HttpClient(transport=transport, retry=RetryPolicy(jitter=0.0))
    assert client.post_json("http://x/y", {}) == {"answer": 1}
    assert len(transport.requests) == 3
    assert client.stats.retries == 2
    assert slept == [pytest.approx(0.1), pytest.approx(0.2)]


def test_client_honors_retry_after(monkeypatch):
    slept = _sleepless(monkeypatch)
    transport = ScriptedTransport([_status(429, retry_after=0.7), _ok()])
    client = HttpClient(
        transport=transport, retry=RetryPolicy(base_delay=0.01, jitter=0.0)
    )
    client.post_json("http://x/y", {})
    # The server's number replaces the (much smaller) schedule.
    assert slept == [pytest.approx(0.7)]


def test_client_retry_after_respects_budget():
    transport = ScriptedTransport([_status(429, retry_after=99.0), _ok()])
    client = HttpClient(
        transport=transport, retry=RetryPolicy(budget=1.0, jitter=0.0)
    )
    started = time.monotonic()
    with pytest.raises(HttpStatusError) as err:
        client.post_json("http://x/y", {})
    assert err.value.status == 429
    assert time.monotonic() - started < 1.0  # failed fast, never slept 99s
    assert len(transport.requests) == 1


def test_client_exhausts_max_attempts(monkeypatch):
    _sleepless(monkeypatch)
    transport = ScriptedTransport([_status(500)] * 4)
    client = HttpClient(transport=transport, retry=RetryPolicy(max_attempts=4))
    with pytest.raises(HttpStatusError) as err:
        client.post_json("http://x/y", {})
    assert err.value.status == 500
    assert len(transport.requests) == 4


def test_client_4xx_never_retries():
    transport = ScriptedTransport([_status(400), _ok()])
    client = HttpClient(transport=transport)
    with pytest.raises(HttpStatusError) as err:
        client.post_json("http://x/y", {})
    assert err.value.status == 400
    assert len(transport.requests) == 1  # the 200 was never requested


def test_client_retries_malformed_and_timeouts(monkeypatch):
    _sleepless(monkeypatch)
    transport = ScriptedTransport(
        [
            HttpResponse(200, {}, b"{this is not json"),
            TransportTimeoutError("slow"),
            _ok(),
        ]
    )
    client = HttpClient(transport=transport, retry=RetryPolicy())
    assert client.post_json("http://x/y", {}) == {"answer": 1}
    assert len(transport.requests) == 3


def test_client_surfaces_last_fault_when_exhausted(monkeypatch):
    _sleepless(monkeypatch)
    transport = ScriptedTransport(
        [TransportTimeoutError("t"), HttpResponse(200, {}, b"garbage")]
    )
    client = HttpClient(transport=transport, retry=RetryPolicy(max_attempts=2))
    with pytest.raises(MalformedResponseError):
        client.post_json("http://x/y", {})


def test_client_async_parity_with_retries():
    transport = ScriptedTransport([_status(503), _ok()])
    client = HttpClient(
        transport=transport, retry=RetryPolicy(base_delay=0.001, jitter=0.0)
    )
    result = asyncio.run(client.apost_json("http://x/y", {"q": 1}))
    assert result == {"answer": 1}
    assert len(transport.requests) == 2
    assert client.stats.retries == 1


def test_client_validation():
    with pytest.raises(ConfigError):
        HttpClient(timeout=0)


def test_http_response_helpers():
    assert HttpResponse(204, {}, b"").ok
    assert not HttpResponse(404, {}, b"").ok
    assert HttpResponse(429, {"retry-after": "2.5"}, b"").retry_after() == 2.5
    assert HttpResponse(429, {"retry-after": "soon"}, b"").retry_after() is None
    assert HttpResponse(429, {"retry-after": "-3"}, b"").retry_after() is None
    assert HttpResponse(200, {}, b"").retry_after() is None
    with pytest.raises(MalformedResponseError):
        HttpResponse(200, {}, b"[1, 2]").json()  # array, not an object


def _http_date(offset_seconds: float) -> str:
    from email.utils import format_datetime

    when = datetime.now(timezone.utc) + timedelta(seconds=offset_seconds)
    return format_datetime(when, usegmt=True)


def test_retry_after_http_date_form():
    """Regression: RFC 7231 allows an HTTP-date; it used to silently
    fall back to the backoff schedule."""
    future = HttpResponse(
        429, {"retry-after": _http_date(120)}, b""
    ).retry_after()
    assert future is not None
    assert 110.0 <= future <= 120.0  # seconds-until, not a timestamp


def test_retry_after_http_date_in_past_clamps_to_zero():
    past = HttpResponse(
        429, {"retry-after": _http_date(-3600)}, b""
    ).retry_after()
    assert past == 0.0  # retry immediately, never sleep(-n)


def test_retry_after_garbage_still_reads_none():
    for raw in ("soon", "Wed, 99 Zzz 2099 99:99:99 GMT", "", "   "):
        assert HttpResponse(429, {"retry-after": raw}, b"").retry_after() is None


# ---------------------------------------------------------------------------
# UrllibTransport against the real (loopback) fake server


def test_urllib_roundtrip_and_error_statuses():
    with FakeLLMServer() as server:
        transport = UrllibTransport()
        response = transport.request(
            "POST",
            server.base_url + "/chat/completions",
            {"Content-Type": "application/json"},
            b'{"messages": [{"role": "user", "content": "hi"}]}',
            5.0,
        )
        assert response.ok
        assert "choices" in response.json()
        # Non-2xx comes back as a response, never an exception.
        server.add_fault(Fault(kind="status", status=503))
        degraded = transport.request(
            "POST",
            server.base_url + "/chat/completions",
            {},
            b'{"messages": [{"role": "user", "content": "hi"}]}',
            5.0,
        )
        assert degraded.status == 503


def test_urllib_timeout_propagates():
    """The per-request timeout reaches the socket: a stalled server
    surfaces TransportTimeoutError in ~timeout seconds, not in
    fault-delay seconds."""
    with FakeLLMServer() as server:
        server.add_fault(Fault(kind="timeout", delay=1.5))
        transport = UrllibTransport()
        started = time.monotonic()
        with pytest.raises(TransportTimeoutError):
            transport.request(
                "POST",
                server.base_url + "/chat/completions",
                {},
                b'{"messages": [{"role": "user", "content": "hi"}]}',
                0.1,
            )
        assert time.monotonic() - started < 1.0


def test_urllib_truncated_body_is_transport_error():
    with FakeLLMServer() as server:
        server.add_fault(Fault(kind="truncated"))
        transport = UrllibTransport()
        with pytest.raises(TransportError):
            transport.request(
                "POST",
                server.base_url + "/chat/completions",
                {},
                b'{"messages": [{"role": "user", "content": "hi"}]}',
                5.0,
            )


def test_urllib_connection_reset_mid_body_is_transport_error():
    with FakeLLMServer() as server:
        server.add_fault(Fault(kind="connection-reset"))
        transport = UrllibTransport()
        with pytest.raises(TransportError):
            transport.request(
                "POST",
                server.base_url + "/chat/completions",
                {},
                b'{"messages": [{"role": "user", "content": "hi"}]}',
                5.0,
            )


def test_urllib_slow_drip_body_times_out():
    """A body that stalls between chunks past the read timeout is the
    client's problem to bound: TransportTimeoutError in ~timeout
    seconds, not whenever the server deigns to finish."""
    with FakeLLMServer() as server:
        server.add_fault(Fault(kind="slow-drip", delay=1.5))
        transport = UrllibTransport()
        started = time.monotonic()
        with pytest.raises(TransportTimeoutError):
            transport.request(
                "POST",
                server.base_url + "/chat/completions",
                {},
                b'{"messages": [{"role": "user", "content": "hi"}]}',
                0.1,
            )
        assert time.monotonic() - started < 1.0


def test_urllib_connection_refused_is_transport_error():
    transport = UrllibTransport()
    port = refused_tcp_port()
    with pytest.raises(TransportError):
        transport.request("POST", f"http://127.0.0.1:{port}/x", {}, b"{}", 1.0)


def test_client_recovers_faults_against_real_server(monkeypatch):
    _sleepless(monkeypatch)
    with FakeLLMServer() as server:
        client = HttpClient(retry=RetryPolicy(max_attempts=6, jitter=0.0))
        server.add_faults(
            Fault(kind="status", status=429, retry_after=0.01),
            Fault(kind="malformed"),
            Fault(kind="truncated"),
            Fault(kind="connection-reset"),
        )
        payload = {"messages": [{"role": "user", "content": "resilient"}]}
        result = client.post_json(server.base_url + "/chat/completions", payload)
        assert result["choices"][0]["message"]["content"].startswith("echo:")
        assert server.request_count == 5  # 4 faulted + 1 clean
        assert [e.fault for e in server.journal] == [
            "status", "malformed", "truncated", "connection-reset", None
        ]


def test_client_retries_slow_drip_as_timeout():
    # No _sleepless here: it would also no-op the fake server's drip
    # stall.  Real (small) backoff sleeps are paid instead.
    with FakeLLMServer() as server:
        client = HttpClient(
            retry=RetryPolicy(jitter=0.0, base_delay=0.01, max_delay=0.02),
            timeout=0.1,
        )
        server.add_fault(Fault(kind="slow-drip", delay=0.6))
        payload = {"messages": [{"role": "user", "content": "drip"}]}
        result = client.post_json(server.base_url + "/chat/completions", payload)
        assert result["choices"][0]["message"]["content"].startswith("echo:")
        assert [e.fault for e in server.journal] == ["slow-drip", None]
        assert client.stats.retries >= 1


# ---------------------------------------------------------------------------
# The no-network guard itself


def test_network_guard_blocks_non_loopback():
    with pytest.raises(NetworkGuardViolation):
        raw_connect("203.0.113.7", 80)  # TEST-NET-3: never routable


def test_network_guard_allows_loopback():
    with FakeLLMServer() as server:
        transport = UrllibTransport()
        response = transport.request(
            "POST",
            server.base_url + "/chat/completions",
            {},
            b'{"messages": [{"role": "user", "content": "local"}]}',
            5.0,
        )
        assert response.ok
