"""BM25 / TF-IDF scoring tests."""

import math

import pytest

from repro.errors import ConfigError
from repro.retrieval import BM25Scorer, Document, InvertedIndex, TfIdfScorer, top_k


@pytest.fixture(scope="module")
def index():
    docs = [
        Document(doc_id="a", text="apple banana apple"),
        Document(doc_id="b", text="banana cherry banana cherry banana"),
        Document(doc_id="c", text="cherry date elderberry fig grape"),
    ]
    return InvertedIndex.build(docs)


def test_bm25_param_validation():
    with pytest.raises(ConfigError):
        BM25Scorer(k1=-1)
    with pytest.raises(ConfigError):
        BM25Scorer(b=1.5)


def test_bm25_idf_nonnegative(index):
    scorer = BM25Scorer()
    for term in index.vocabulary():
        assert scorer.idf(index, term) >= 0.0
    assert scorer.idf(index, "absent") == 0.0


def test_bm25_idf_rarer_is_larger(index):
    scorer = BM25Scorer()
    # "appl" appears in 1 doc, "banana" in 2: rarer term has larger IDF.
    assert scorer.idf(index, "appl") > scorer.idf(index, "banana")


def test_bm25_scores_only_matching_docs(index):
    scores = BM25Scorer().score_query(index, ["appl"])
    assert set(scores) == {"a"}
    assert scores["a"] > 0


def test_bm25_more_matches_scores_higher(index):
    scores = BM25Scorer().score_query(index, ["banana", "cherri"])
    assert scores["b"] > scores["a"]
    assert scores["b"] > scores["c"]


def test_bm25_tf_saturation(index):
    """Increasing tf increases the score but with diminishing returns."""
    scorer = BM25Scorer(k1=1.2, b=0.0)
    idf = scorer.idf(index, "banana")

    def partial(tf):
        return idf * tf * (scorer.k1 + 1) / (tf + scorer.k1)

    assert partial(2) > partial(1)
    assert partial(2) - partial(1) < partial(1) - partial(0)


def test_bm25_empty_index():
    assert BM25Scorer().score_query(InvertedIndex(), ["term"]) == {}


def test_bm25_k1_zero_ignores_tf(index):
    """With k1=0 the per-term contribution is exactly IDF for any tf>0."""
    scorer = BM25Scorer(k1=0.0, b=0.0)
    scores = scorer.score_query(index, ["banana"])
    assert math.isclose(scores["a"], scorer.idf(index, "banana"))
    assert math.isclose(scores["b"], scorer.idf(index, "banana"))


def test_tfidf_scores(index):
    scores = TfIdfScorer().score_query(index, ["banana"])
    assert scores["b"] > scores["a"]  # higher tf wins despite longer doc
    assert "c" not in scores


def test_tfidf_absent_term(index):
    assert TfIdfScorer().score_query(index, ["absent"]) == {}


def test_top_k_ordering():
    scores = {"x": 1.0, "y": 3.0, "z": 2.0}
    assert top_k(scores, 2) == [("y", 3.0), ("z", 2.0)]


def test_top_k_tiebreak_by_id():
    scores = {"b": 1.0, "a": 1.0}
    assert top_k(scores, 2) == [("a", 1.0), ("b", 1.0)]


def test_top_k_invalid():
    with pytest.raises(ConfigError):
        top_k({"a": 1.0}, 0)
