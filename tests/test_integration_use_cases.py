"""End-to-end reproduction of the paper's three demonstration use cases.

Every assertion here corresponds to a sentence in Section III of the
paper; EXPERIMENTS.md cross-references these tests.
"""

import pytest

from repro import SearchDirection
from repro.core import ContextEvaluator
from tests.conftest import make_engine


class TestUseCase1AmbiguousAnswers:
    """Section III-B: the Big Three."""

    def test_retrieval_places_match_wins_first(self, big_three, big_three_engine):
        context = big_three_engine.retrieve(big_three.query)
        assert list(context.doc_ids()) == big_three.expected_context
        assert context.doc_ids()[0] == "bigthree-1-match-wins"

    def test_full_context_answer_is_federer(self, big_three, big_three_engine):
        """'when asked with the combination of all retrieved documents,
        the LLM's answer is Roger Federer'"""
        assert big_three_engine.ask(big_three.query).answer == "Roger Federer"

    def test_parametric_expectation_is_djokovic(self, big_three, big_three_engine):
        """'The user expects that Novak Djokovic ... might be the LLM's
        choice' — the parametric (empty-context) answer."""
        context = big_three_engine.retrieve(big_three.query)
        evaluator = ContextEvaluator(big_three_engine.llm, context)
        assert evaluator.empty().answer == "Novak Djokovic"

    def test_combination_insights_rule(self, big_three, big_three_engine):
        """'this document was included in every combination for which the
        LLM answered Roger Federer'"""
        insights = big_three_engine.combination_insights(big_three.query)
        rule = insights.rule_for("Roger Federer")
        assert rule is not None
        assert rule.required_sources == ("bigthree-1-match-wins",)

    def test_first_document_drives_the_answer(self, big_three, big_three_engine):
        """'RAGE ... discovers that the first document led the LLM to
        produce this answer' — removing it flips the answer."""
        result = big_three_engine.combination_counterfactual(big_three.query)
        assert result.found
        assert result.counterfactual.changed_sources == ("bigthree-1-match-wins",)

    def test_moving_to_second_position_flips_to_djokovic(
        self, big_three, big_three_engine
    ):
        """'moving the document to the second position altered the answer
        to Novak Djokovic'"""
        result = big_three_engine.permutation_counterfactual(big_three.query)
        assert result.found
        cf = result.counterfactual
        assert cf.perturbation.order.index("bigthree-1-match-wins") == 1
        assert cf.new_answer == "Novak Djokovic"

    def test_answers_are_ambiguous_across_combinations(
        self, big_three, big_three_engine
    ):
        """Fig. 2: multiple answers across combinations."""
        insights = big_three_engine.combination_insights(big_three.query)
        assert len(insights.pie()) == 3


class TestUseCase2InconsistentSources:
    """Section III-C: US Open champions."""

    def test_context_is_chronological_with_2023_last(self, us_open, us_open_engine):
        context = us_open_engine.retrieve(us_open.query)
        assert list(context.doc_ids()) == us_open.expected_context
        assert context.doc_ids()[-1] == "usopen-2023"

    def test_full_context_answer_is_gauff(self, us_open, us_open_engine):
        """'the combination containing all sources produces the response
        Coco Gauff'"""
        assert us_open_engine.ask(us_open.query).answer == "Coco Gauff"

    def test_last_document_is_the_provenance(self, us_open, us_open_engine):
        """'the last context document recognizes Gauff as the 2023
        champion' — removing it flips the answer."""
        result = us_open_engine.combination_counterfactual(us_open.query)
        assert result.found
        assert "usopen-2023" in result.counterfactual.changed_sources

    def test_midcontext_reordering_yields_swiatek(self, us_open, us_open_engine):
        """'the LLM incorrectly identifies the 2022 champion Iga Swiatek
        whenever the last document is moved towards the middle'"""
        result = us_open_engine.permutation_counterfactual(us_open.query)
        assert result.found
        cf = result.counterfactual
        assert cf.new_answer == "Iga Swiatek"
        new_position = cf.perturbation.order.index("usopen-2023")
        assert 0 < new_position < 4  # moved inward, off both ends

    def test_middle_positions_systematically_confuse(self, us_open, us_open_engine):
        """Exhaustive check for the exact middle position: the up-to-date
        document never wins from there, and the 2022 champion is the
        dominant wrong answer (an older champion can still win when it
        occupies a high-attention end — same mechanism, staler source)."""
        context = us_open_engine.retrieve(us_open.query)
        evaluator = ContextEvaluator(us_open_engine.llm, context)
        others = [d for d in context.doc_ids() if d != "usopen-2023"]
        import itertools
        from collections import Counter

        answers = Counter()
        for rest in itertools.permutations(others):
            order = rest[:2] + ("usopen-2023",) + rest[2:]
            answers[evaluator.evaluate(order).answer] += 1
        assert answers["Coco Gauff"] == 0
        assert answers.most_common(1)[0][0] == "Iga Swiatek"

    def test_stale_parametric_memory(self, us_open, us_open_engine):
        context = us_open_engine.retrieve(us_open.query)
        evaluator = ContextEvaluator(us_open_engine.llm, context)
        assert evaluator.empty().answer == "Emma Raducanu"


class TestUseCase3Timelines:
    """Section III-D: Player of the Year."""

    def test_full_context_answer_is_five(self, player_of_the_year, potya_engine):
        """'the LLM produces the expected answer of 5'"""
        assert potya_engine.ask(player_of_the_year.query).answer == "5"

    def test_bottom_up_cites_five_documents(self, player_of_the_year, potya_engine):
        """'RAGE cites five separate documents from those provided, each
        documenting a different year in which Djokovic won'"""
        result = potya_engine.combination_counterfactual(
            player_of_the_year.query, direction=SearchDirection.BOTTOM_UP
        )
        assert result.found
        cited = sorted(result.counterfactual.changed_sources)
        assert cited == [
            "potya-2011", "potya-2012", "potya-2014", "potya-2015", "potya-2018"
        ]
        assert result.counterfactual.new_answer == "5"

    def test_permutation_insights_consistent(self, player_of_the_year, potya_engine):
        """'a pie chart and answer table that indicate a consistent answer
        of 5 ... no rules were found'"""
        insights = potya_engine.permutation_insights(
            player_of_the_year.query, sample_size=40
        )
        assert insights.is_stable
        assert insights.pie()[0].answer == "5"
        assert insights.rules == []

    def test_removing_any_djokovic_year_decrements(self, player_of_the_year, potya_engine):
        context = potya_engine.retrieve(player_of_the_year.query)
        evaluator = ContextEvaluator(potya_engine.llm, context)
        for year in (2011, 2012, 2014, 2015, 2018):
            kept = tuple(d for d in context.doc_ids() if d != f"potya-{year}")
            assert evaluator.evaluate(kept).answer == "4"

    def test_removing_nadal_years_keeps_answer(self, player_of_the_year, potya_engine):
        context = potya_engine.retrieve(player_of_the_year.query)
        evaluator = ContextEvaluator(potya_engine.llm, context)
        kept = tuple(
            d for d in context.doc_ids() if d not in ("potya-2010", "potya-2013")
        )
        assert evaluator.evaluate(kept).answer == "5"

    def test_imperfect_parametric_memory(self, player_of_the_year, potya_engine):
        context = potya_engine.retrieve(player_of_the_year.query)
        evaluator = ContextEvaluator(potya_engine.llm, context)
        assert evaluator.empty().answer == "4"


class TestCrossCutting:
    """Properties the demo leans on across all use cases."""

    @pytest.mark.parametrize(
        "name", ["big_three", "us_open", "player_of_the_year"]
    )
    def test_explanations_are_deterministic(self, name):
        from repro.datasets import load_use_case

        case = load_use_case(name)
        first = make_engine(case).ask(case.query).answer
        second = make_engine(case).ask(case.query).answer
        assert first == second

    def test_attention_and_retrieval_scoring_both_work(self, big_three):
        from repro import RelevanceMethod

        for method in (RelevanceMethod.RETRIEVAL, RelevanceMethod.ATTENTION):
            engine = make_engine(big_three, relevance_method=method)
            result = engine.combination_counterfactual(big_three.query)
            assert result.found
            assert result.counterfactual.new_answer == "Novak Djokovic"
