"""Fisher–Yates and permutation sampling tests."""

import itertools
import math
import random
from collections import Counter

import pytest

from repro.combinatorics import (
    all_permutations,
    apply_permutation,
    fisher_yates_shuffle,
    inversion_vector,
    naive_sample_permutations,
    permutation_count,
    sample_permutations,
)
from repro.errors import ConfigError


def test_shuffle_is_permutation():
    rng = random.Random(0)
    items = list(range(10))
    for _ in range(50):
        assert sorted(fisher_yates_shuffle(items, rng)) == items


def test_shuffle_does_not_mutate_input():
    items = [1, 2, 3]
    fisher_yates_shuffle(items, random.Random(0))
    assert items == [1, 2, 3]


def test_shuffle_deterministic_given_seed():
    a = fisher_yates_shuffle(list(range(8)), random.Random(42))
    b = fisher_yates_shuffle(list(range(8)), random.Random(42))
    assert a == b


def test_shuffle_uniformity_chi_square():
    """All 3! = 6 permutations should appear with near-equal frequency."""
    rng = random.Random(7)
    n = 6000
    counts = Counter(tuple(fisher_yates_shuffle([0, 1, 2], rng)) for _ in range(n))
    assert len(counts) == 6
    expected = n / 6
    chi2 = sum((count - expected) ** 2 / expected for count in counts.values())
    # 5 degrees of freedom; 99.9th percentile is ~20.5.
    assert chi2 < 20.5


def test_sample_permutations_distinct():
    perms = sample_permutations(list(range(5)), 20, random.Random(0))
    assert len(perms) == 20
    assert len(set(perms)) == 20


def test_sample_permutations_saturating():
    perms = sample_permutations([0, 1, 2], 100, random.Random(0))
    assert sorted(perms) == sorted(itertools.permutations([0, 1, 2]))


def test_sample_permutations_with_replacement():
    perms = sample_permutations([0, 1], 10, random.Random(0), distinct=False)
    assert len(perms) == 10  # k!=2 so duplicates are required


def test_sample_permutations_invalid():
    with pytest.raises(ConfigError):
        sample_permutations([1, 2], 0, random.Random(0))


def test_naive_sample_matches_population():
    rng = random.Random(3)
    perms = naive_sample_permutations([0, 1, 2, 3], 5, rng)
    assert len(perms) == 5
    universe = set(itertools.permutations([0, 1, 2, 3]))
    assert set(perms) <= universe


def test_naive_sample_saturating():
    perms = naive_sample_permutations([0, 1], 99, random.Random(0))
    assert sorted(perms) == [(0, 1), (1, 0)]


def test_all_permutations_lexicographic():
    perms = list(all_permutations([0, 1, 2]))
    assert perms == sorted(perms)
    assert len(perms) == 6


def test_permutation_count():
    assert permutation_count(0) == 1
    assert permutation_count(5) == math.factorial(5)


def test_apply_permutation():
    assert apply_permutation(["a", "b", "c"], [2, 0, 1]) == ["c", "a", "b"]
    with pytest.raises(ConfigError):
        apply_permutation(["a", "b"], [0, 0])


def test_inversion_vector():
    assert inversion_vector([0, 1, 2]) == [0, 0, 0]
    assert inversion_vector([2, 1, 0]) == [0, 1, 2]
    assert sum(inversion_vector([1, 0, 2])) == 1


def test_sample_permutations_exclude_rejects_during_draw():
    items = ("a", "b", "c")
    for seed in range(20):
        picks = sample_permutations(
            items, 2, random.Random(seed), exclude=[items]
        )
        assert len(picks) == 2
        assert items not in picks


def test_sample_permutations_exclude_caps_population():
    items = ("a", "b", "c")
    picks = sample_permutations(items, 50, random.Random(0), exclude=[items])
    assert len(picks) == math.factorial(3) - 1
    assert items not in picks


def test_sample_permutations_exclude_all_raises():
    """Regression guard: distinct=False with a fully excluded population
    must raise instead of rejection-sampling forever."""
    with pytest.raises(ConfigError):
        sample_permutations(
            ("a",), 1, random.Random(0), distinct=False, exclude=[("a",)]
        )


def test_sample_permutations_exclude_ignores_non_permutations():
    items = ("a", "b")
    picks = sample_permutations(
        items, 2, random.Random(0), exclude=[("z", "q"), ("a",)]
    )
    assert sorted(picks) == [("a", "b"), ("b", "a")]
