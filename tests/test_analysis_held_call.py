"""``held-call``: known-blocking work performed while a lock is held."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import analyze_sources


def findings(*items, rule="held-call"):
    result = analyze_sources(
        [(rel, textwrap.dedent(text)) for rel, text in items]
    )
    return [f for f in result.findings if f.rule == rule]


def test_sleep_under_lock_fires():
    found = findings(
        (
            "src/repro/llm/x.py",
            """
            import threading
            import time

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self):
                    with self._lock:
                        time.sleep(0.5)
            """,
        )
    )
    assert len(found) == 1
    assert "time.sleep" in found[0].message
    assert "Box._lock" in found[0].message
    assert "outside the `with` block" in found[0].message


def test_generate_under_lock_fires():
    found = findings(
        (
            "src/repro/llm/x.py",
            """
            import threading

            class Cache:
                def __init__(self, llm):
                    self._lock = threading.Lock()
                    self.llm = llm

                def get_or_generate(self, prompt):
                    with self._lock:
                        return self.llm.generate(prompt)
            """,
        )
    )
    assert len(found) == 1
    assert "generate" in found[0].message


def test_urlopen_under_module_lock_fires():
    found = findings(
        (
            "src/repro/llm/x.py",
            """
            import threading
            import urllib.request

            LOCK = threading.Lock()

            def fetch(url):
                with LOCK:
                    return urllib.request.urlopen(url)
            """,
        )
    )
    assert len(found) == 1
    assert "urllib.request.urlopen" in found[0].message


def test_sleep_outside_lock_is_clean():
    assert not findings(
        (
            "src/repro/llm/x.py",
            """
            import threading
            import time

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self):
                    with self._lock:
                        pending = True
                    time.sleep(0.5)
                    return pending
            """,
        )
    )


def test_wait_on_condition_wrapping_held_lock_is_blessed():
    # Condition.wait() releases the wrapped lock while sleeping — the
    # one blocking call that is *correct* under its own lock.  Modeled
    # on RageServer._idle = Condition(self._lock).
    assert not findings(
        (
            "src/repro/app/x.py",
            """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._idle = threading.Condition(self._lock)
                    self.busy = 0

                def drain(self):
                    with self._lock:
                        while self.busy:
                            self._idle.wait(timeout=1.0)
            """,
        )
    )


def test_wait_on_unrelated_object_under_lock_fires():
    found = findings(
        (
            "src/repro/app/x.py",
            """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()

                def join(self, worker):
                    with self._lock:
                        worker.wait()
            """,
        )
    )
    assert len(found) == 1


def test_tests_are_out_of_scope():
    assert not findings(
        (
            "tests/test_x.py",
            """
            import threading
            import time

            LOCK = threading.Lock()

            def test_contention():
                with LOCK:
                    time.sleep(0.01)
            """,
        )
    )


def test_suppression_silences_held_call():
    assert not findings(
        (
            "src/repro/llm/x.py",
            """
            import threading
            import time

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def slow(self):
                    with self._lock:
                        time.sleep(0.5)  # repro: disable=held-call -- startup only
            """,
        )
    )
