"""Inverted index and corpus/document unit tests."""

import json

import pytest

from repro.errors import UnknownDocumentError
from repro.retrieval import Corpus, Document, InvertedIndex
from repro.textproc import Tokenizer


def test_document_validation():
    with pytest.raises(ValueError):
        Document(doc_id="", text="x")
    with pytest.raises(ValueError):
        Document(doc_id="d", text="")


def test_document_roundtrip():
    doc = Document(doc_id="d1", text="hello", title="t", metadata={"a": "1"})
    assert Document.from_dict(doc.to_dict()) == doc


def test_document_display_title():
    assert Document(doc_id="d", text="x", title="T").display_title() == "T"
    assert Document(doc_id="d", text="x").display_title() == "d"


def test_corpus_duplicate_rejected():
    corpus = Corpus([Document(doc_id="d", text="x")])
    with pytest.raises(ValueError):
        corpus.add(Document(doc_id="d", text="y"))


def test_corpus_lookup_and_iteration(tiny_corpus):
    assert len(tiny_corpus) == 4
    assert tiny_corpus.get("d2").doc_id == "d2"
    assert "d3" in tiny_corpus
    assert tiny_corpus.doc_ids() == ["d1", "d2", "d3", "d4"]
    with pytest.raises(UnknownDocumentError):
        tiny_corpus.get("missing")


def test_corpus_json_roundtrip(tiny_corpus):
    restored = Corpus.from_json(tiny_corpus.to_json())
    assert restored.doc_ids() == tiny_corpus.doc_ids()
    assert restored.get("d1").text == tiny_corpus.get("d1").text
    json.loads(tiny_corpus.to_json())  # valid JSON


def test_index_document_frequency(tiny_index):
    assert tiny_index.document_frequency("quick") == 3
    assert tiny_index.document_frequency("fox") == 3  # foxes stems to fox
    assert tiny_index.document_frequency("absent") == 0


def test_index_term_frequency(tiny_index):
    assert tiny_index.term_frequency("quick", "d4") == 3
    assert tiny_index.term_frequency("quick", "d3") == 0


def test_index_positions(tiny_index):
    postings = tiny_index.postings("quick")
    by_doc = {p.doc_id: p for p in postings}
    assert by_doc["d4"].positions == (0, 1, 2)


def test_index_doc_length(tiny_index):
    # "the quick brown fox jumps over the lazy dog" minus stopwords
    assert tiny_index.doc_length("d1") == 6
    with pytest.raises(UnknownDocumentError):
        tiny_index.doc_length("nope")


def test_index_title_indexed():
    index = InvertedIndex.build(
        [Document(doc_id="d", text="body words", title="tiger")]
    )
    assert index.document_frequency("tiger") == 1


def test_index_stats(tiny_index):
    stats = tiny_index.stats
    assert stats.num_documents == 4
    assert stats.total_terms > 0
    assert stats.average_doc_length == stats.total_terms / 4
    assert stats.vocabulary_size == len(tiny_index.vocabulary())


def test_empty_index_stats():
    index = InvertedIndex()
    assert index.stats.average_doc_length == 0.0
    assert len(index) == 0


def test_index_contains_and_documents(tiny_index):
    assert "d1" in tiny_index
    assert "zz" not in tiny_index
    assert [d.doc_id for d in tiny_index.documents()] == ["d1", "d2", "d3", "d4"]


def test_index_without_positions(tiny_corpus):
    index = InvertedIndex.build(tiny_corpus, store_positions=False)
    assert all(p.positions == () for p in index.postings("quick"))


def test_index_custom_tokenizer(tiny_corpus):
    index = InvertedIndex.build(tiny_corpus, tokenizer=Tokenizer(stem=False))
    assert index.document_frequency("foxes") == 1
    assert index.document_frequency("fox") == 2


def test_remove_document_restores_pre_add_state(tiny_corpus):
    index = InvertedIndex.build(tiny_corpus)
    removed = index.remove_document("d4")
    assert removed.doc_id == "d4"
    rebuilt = InvertedIndex.build(d for d in tiny_corpus if d.doc_id != "d4")
    assert index.stats == rebuilt.stats
    assert index.vocabulary() == rebuilt.vocabulary()
    assert "d4" not in index
    # The title-only term disappeared with its sole document.
    assert index.document_frequency("everywher") == 0


def test_remove_document_unknown_raises(tiny_index):
    index = InvertedIndex.build(tiny_index.documents())
    with pytest.raises(UnknownDocumentError):
        index.remove_document("missing")


def test_remove_then_readd_roundtrips(tiny_corpus):
    index = InvertedIndex.build(tiny_corpus)
    baseline = index.stats
    doc = index.remove_document("d2")
    index.add_document(doc)
    assert index.stats == baseline
    assert index.document("d2") == doc


def test_update_document_replaces_content(tiny_corpus):
    index = InvertedIndex.build(tiny_corpus)
    from repro.retrieval import Document

    index.update_document(Document(doc_id="d3", text="zebra crossings"))
    assert index.document_frequency("zebra") == 1
    # No stale postings from the old content survive.
    assert all(p.doc_id != "d3" for p in index.postings("cat"))
    assert index.document("d3").text == "zebra crossings"


def test_update_document_unknown_raises(tiny_corpus):
    from repro.retrieval import Document

    index = InvertedIndex.build(tiny_corpus)
    with pytest.raises(UnknownDocumentError):
        index.update_document(Document(doc_id="missing", text="x"))


def test_corpus_remove(tiny_corpus):
    corpus = Corpus(list(tiny_corpus))
    doc = corpus.remove("d1")
    assert doc.doc_id == "d1"
    assert "d1" not in corpus
    with pytest.raises(UnknownDocumentError):
        corpus.remove("d1")
