"""Porter stemmer unit tests against known reference pairs."""

import pytest

from repro.textproc.stemmer import PorterStemmer, stem


# Reference pairs from Porter's published examples and vocabulary.
KNOWN_STEMS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", KNOWN_STEMS)
def test_known_stems(word, expected):
    assert stem(word) == expected


def test_short_words_unchanged():
    for word in ("a", "be", "it", "ox"):
        assert stem(word) == word


def test_morphological_variants_collapse():
    assert stem("winning") == stem("winnings")[: len(stem("winning"))]
    assert stem("running") == stem("runs")[:3] == "run"
    assert stem("championships").startswith("championship"[:8])


def test_wins_and_winning_share_stem():
    assert stem("wins") == "win"
    assert stem("winning") == "win"


def test_stemmer_object_caches():
    stemmer = PorterStemmer()
    assert stemmer("relational") == "relat"
    assert stemmer("relational") == "relat"
    assert stemmer.cache_size() == 1


def test_stemmer_is_idempotent_on_common_words():
    # Stemming an already-stemmed common word should be stable enough to
    # reuse as an index term (not required by Porter in general, but holds
    # for this vocabulary and protects the index contract).
    for word in ("tennis", "player", "champion", "award", "season"):
        once = stem(word)
        assert stem(once) == once
