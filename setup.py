"""Setup shim: enables legacy editable installs in offline environments
(no `wheel` package available for PEP 517 builds)."""
from setuptools import setup

setup()
