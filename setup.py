"""Setup shim: enables legacy editable installs in offline environments
(no `wheel` package available for PEP 517 builds)."""
from setuptools import find_packages, setup

setup(
    name="repro-rage",
    version="1.0.0",
    description="Reproduction of RAGE: Retrieval-Augmented LLM Explanations (ICDE 2024)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["rage=repro.app.cli:main"]},
)
