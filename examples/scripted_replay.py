#!/usr/bin/env python3
"""Replay: explain a *recorded* LLM, no model in the loop.

RAGE's algorithms only need a prompt -> answer function.  This example
records the simulated model's behaviour on Use Case 1 (standing in for
a trace captured from a production LLM), then runs every explanation
against the recording through ``ScriptedLLM`` — byte-identical results,
zero model calls.  Useful for auditing deployed systems offline.

    python examples/scripted_replay.py
"""

import itertools

from repro import Rage, RageConfig, SimulatedLLM
from repro.core import ContextEvaluator, SearchDirection
from repro.datasets import load_use_case
from repro.llm import PromptBuilder, ScriptedLLM


def record_interactions(case):
    """Capture (ordered source texts -> answer) for every combination
    and permutation the explanations might evaluate."""
    live = SimulatedLLM(knowledge=case.knowledge)
    builder = PromptBuilder()
    rage = Rage.from_corpus(case.corpus, live, config=RageConfig(k=case.k))
    context = rage.retrieve(case.query)
    texts = context.texts()

    recording = ScriptedLLM(default="<unrecorded>")
    count = 0
    for size in range(0, len(texts) + 1):
        for combo in itertools.combinations(range(len(texts)), size):
            for order in itertools.permutations(combo):
                ordered = [texts[i] for i in order]
                answer = live.generate(builder.build(case.query, ordered)).answer
                recording.record(ordered, answer)
                count += 1
    print(f"recorded {count} (context -> answer) pairs from the live model")
    return recording, context


def main() -> None:
    case = load_use_case("big_three")
    recording, context = record_interactions(case)

    # From here on, *only* the recording is consulted.
    replay = Rage.from_corpus(case.corpus, recording, config=RageConfig(k=case.k))
    calls_before = recording.calls

    asked = replay.ask(case.query, context=context)
    print(f"\nreplayed answer: {asked.answer!r}")

    insights = replay.combination_insights(case.query, context=context)
    print("replayed distribution:", [(s.answer, s.count) for s in insights.pie()])
    for rule in insights.rules:
        print("replayed rule:", rule.describe())

    top_down = replay.combination_counterfactual(
        case.query, context=context, direction=SearchDirection.TOP_DOWN
    )
    cf = top_down.counterfactual
    print(
        f"replayed counterfactual: removing {', '.join(cf.changed_sources)} "
        f"-> {cf.new_answer!r}"
    )

    perm = replay.permutation_counterfactual(case.query, context=context)
    print(
        f"replayed order flip: tau={perm.counterfactual.tau:.3f} "
        f"-> {perm.counterfactual.new_answer!r}"
    )

    print(
        f"\nexplanations consumed {recording.calls - calls_before} replayed "
        "prompts; the live model was never called again"
    )

    # sanity: the replay reproduces the live system's explanations
    evaluator = ContextEvaluator(recording, context)
    assert evaluator.original().answer == "Roger Federer"
    assert cf.new_answer == "Novak Djokovic"


if __name__ == "__main__":
    main()
