#!/usr/bin/env python3
"""Optimal permutations: counteracting "lost in the middle".

Demonstrates the paper's assignment-problem feature: given per-source
relevance and an expected position-attention distribution, compute the
top-s context orders that place important sources in high-attention
positions — and show that the placement actually changes what the
simulated LLM answers.

    python examples/optimal_reordering.py
"""

from repro import Rage, RageConfig, SimulatedLLM
from repro.attention import PositionPrior, position_weights
from repro.core import ContextEvaluator, optimal_permutations
from repro.datasets import load_use_case
from repro.viz import render_optimal_permutations


def main() -> None:
    case = load_use_case("us_open")
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )
    context = rage.retrieve(case.query)
    evaluator = ContextEvaluator(rage.llm, context)

    print("The expected position-attention distribution (V-shaped, k=5):")
    weights = position_weights(PositionPrior.V_SHAPED, context.k, depth=0.8)
    for position, weight in enumerate(weights, start=1):
        print(f"  position {position}: {'#' * round(weight * 100)} {weight:.3f}")

    # Importance: for a most-recent question, newer sources matter more.
    relevance = {
        doc_id: 0.9 ** (2023 - int(context.document(doc_id).metadata["year"]))
        for doc_id in context.doc_ids()
    }
    print("\nSource relevance (recency-weighted):")
    for doc_id, score in sorted(relevance.items(), key=lambda kv: -kv[1]):
        print(f"  {doc_id}: {score:.3f}")

    print("\nTop-5 optimal placements (Chegireddy-Hamacher, O(sk^3)):")
    placements = optimal_permutations(
        context, relevance, s=5, prior=PositionPrior.V_SHAPED, depth=0.8
    )
    print(render_optimal_permutations(placements))

    print("\nDo the placements matter?  Answers under each policy:")
    best = placements[0].order
    worst = optimal_permutations(
        context, relevance, s=1, prior=PositionPrior.INVERTED_V, depth=0.8
    )[0].order
    for label, order in (("optimal", best), ("adversarial", worst)):
        answer = evaluator.evaluate(order).answer
        print(f"  {label:<12} {' > '.join(order)}")
        print(f"  {'':<12} -> {answer!r}")


if __name__ == "__main__":
    main()
