#!/usr/bin/env python3
"""Bring your own data: build a corpus, a knowledge base, and explain.

Shows the full public API without any built-in dataset: documents are
constructed in code, parametric knowledge is registered explicitly, and
every explanation primitive runs against the custom scenario.  Also
writes a standalone HTML report.

    python examples/custom_corpus.py [report.html]
"""

import sys

from repro import (
    Corpus,
    Document,
    KnowledgeBase,
    Rage,
    RageConfig,
    SimulatedLLM,
)
from repro.llm import QuestionIntent
from repro.viz import render_combination_insights, write_report_html


def build_corpus() -> Corpus:
    """A small conflicting-evidence scenario about a coffee contest."""
    return Corpus(
        [
            Document(
                doc_id="espresso-cup-2022",
                title="Espresso Cup 2022",
                text=(
                    "The 2022 espresso brewing cup was won by Mara Velasquez, "
                    "who defeated Old Crow Roasters in the final round."
                ),
            ),
            Document(
                doc_id="espresso-cup-2023",
                title="Espresso Cup 2023",
                text=(
                    "The 2023 espresso brewing cup was won by Jonas Bergman, "
                    "who defeated Mara Velasquez in the final round."
                ),
            ),
            Document(
                doc_id="barista-rankings",
                title="Barista rankings",
                text=(
                    "Mara Velasquez ranks first with 412 espresso brewing "
                    "points in the international barista standings."
                ),
            ),
            Document(
                doc_id="latte-art",
                title="Latte art",
                text=(
                    "Pia Okafor is widely considered the best latte artist in "
                    "the espresso scene."
                ),
            ),
        ]
    )


def build_knowledge() -> KnowledgeBase:
    """What the simulated LLM 'remembers from training' (stale: 2022)."""
    kb = KnowledgeBase()
    kb.add_fact(
        intent=QuestionIntent.MOST_RECENT,
        topic="most recent winner espresso brewing cup",
        answer="Mara Velasquez",
        confidence=0.8,
    )
    return kb


def main() -> None:
    rage = Rage.from_corpus(
        build_corpus(),
        SimulatedLLM(knowledge=build_knowledge()),
        config=RageConfig(k=3),
    )
    query = "Who is the most recent winner of the espresso brewing cup?"

    asked = rage.ask(query)
    print(f"Question:  {query}")
    print(f"Retrieved: {' > '.join(asked.context.doc_ids())}")
    print(f"Answer:    {asked.answer!r}")

    print("\nCombination insights:")
    print(render_combination_insights(rage.combination_insights(query)))

    print("\nTop-down counterfactual:")
    result = rage.combination_counterfactual(query)
    if result.found:
        cf = result.counterfactual
        print(
            f"  removing {', '.join(cf.changed_sources)} flips "
            f"{cf.baseline_answer!r} -> {cf.new_answer!r}"
        )

    target = sys.argv[1] if len(sys.argv) > 1 else "custom_corpus_report.html"
    write_report_html(rage.explain(query), target)
    print(f"\nHTML report written to {target}")


if __name__ == "__main__":
    main()
