#!/usr/bin/env python3
"""Quickstart: ask a question, get an answer, get an explanation.

Runs the library end-to-end on the paper's Use Case 1 dataset in under
a second:

    python examples/quickstart.py
"""

from repro import Rage, RageConfig, SimulatedLLM
from repro.datasets import load_use_case
from repro.viz import (
    render_combination_counterfactual,
    render_combination_insights,
    render_permutation_counterfactual,
)


def main() -> None:
    # 1. Load a demo scenario: corpus + question + the simulated LLM's
    #    parametric knowledge.
    case = load_use_case("big_three")

    # 2. Build the engine: index the corpus, wire up retrieval and LLM.
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )

    # 3. Ask.  Retrieval builds the context Dq; the LLM answers from it.
    asked = rage.ask(case.query)
    print(f"Question: {asked.query}")
    print(f"Context:  {' > '.join(asked.context.doc_ids())}")
    print(f"Answer:   {asked.answer}")
    print()

    # 4. Why?  Combination insights: which sources drive the answer.
    print(render_combination_insights(rage.combination_insights(case.query)))
    print()

    # 5. Minimal counterfactual: the smallest removal that flips it.
    print(render_combination_counterfactual(rage.combination_counterfactual(case.query)))
    print()

    # 6. Order sensitivity: the most-similar reordering that flips it.
    print(render_permutation_counterfactual(rage.permutation_counterfactual(case.query)))


if __name__ == "__main__":
    main()
