#!/usr/bin/env python3
"""Use Case 2 — Inconsistent Sources (paper Section III-C).

Five similar documents about US Open champions differ only in currency.
The LLM answers correctly from the full context, but permutation
analysis shows out-of-date documents "confuse" it whenever the current
document is moved toward the middle — the "lost in the middle" bias in
action.

    python examples/inconsistent_sources.py
"""

import itertools
from collections import Counter

from repro import Rage, RageConfig, SimulatedLLM
from repro.core import ContextEvaluator
from repro.datasets import load_use_case
from repro.viz import render_permutation_insights


def main() -> None:
    case = load_use_case("us_open")
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )

    asked = rage.ask(case.query)
    print(f"Question: {case.query}")
    print(f"Context:  {' > '.join(asked.context.doc_ids())}")
    print(f"Answer:   {asked.answer!r}  (the 2023 champion — correct)")

    print("\n— Verifying provenance: which source produced the answer? —")
    top_down = rage.combination_counterfactual(case.query, context=asked.context)
    cf = top_down.counterfactual
    print(
        f"  removing {', '.join(cf.changed_sources)} flips the answer to "
        f"{cf.new_answer!r}: the last context document is the provenance"
    )

    print("\n— Could out-of-date documents mislead the LLM? —")
    permutation = rage.permutation_counterfactual(case.query, context=asked.context)
    cf = permutation.counterfactual
    position = cf.perturbation.order.index("usopen-2023") + 1
    print(
        f"  yes: with the 2023 document at position {position} (tau="
        f"{cf.tau:.3f}) the LLM answers {cf.new_answer!r} — the 2022 champion"
    )

    print("\n— How systematic is it? Sweep the 2023 document's position —")
    evaluator = ContextEvaluator(rage.llm, asked.context)
    others = [d for d in asked.context.doc_ids() if d != "usopen-2023"]
    for position in range(5):
        answers = Counter()
        for rest in itertools.permutations(others):
            order = rest[:position] + ("usopen-2023",) + rest[position:]
            answers[evaluator.evaluate(order).answer] += 1
        total = sum(answers.values())
        correct = answers["Coco Gauff"] / total * 100
        mode = answers.most_common(1)[0][0]
        print(f"  position {position + 1}: correct {correct:5.1f}%   mode answer: {mode}")

    print("\n— Sampled permutation insights —")
    insights = rage.permutation_insights(case.query, context=asked.context, sample_size=40)
    print(render_permutation_insights(insights, max_rows=8))


if __name__ == "__main__":
    main()
