#!/usr/bin/env python3
"""Use Case 3 — Timelines (paper Section III-D).

Ten documents form a 2010–2019 timeline of Player of the Year awards.
The LLM counts Djokovic's five wins; the bottom-up counterfactual
produces the five supporting documents as citations; and permutation
insights confirm the count is stable under any document order.

    python examples/timeline_citations.py
"""

from repro import Rage, RageConfig, SearchDirection, SimulatedLLM
from repro.core import ContextEvaluator
from repro.datasets import load_use_case
from repro.viz import render_permutation_insights


def main() -> None:
    case = load_use_case("player_of_the_year")
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k, max_evaluations=2000),
    )

    asked = rage.ask(case.query)
    print(f"Question: {case.query}")
    print(f"Answer:   {asked.answer!r} (expected: 5)")

    print("\n— The LLM's parametric memory alone gets it wrong —")
    evaluator = ContextEvaluator(rage.llm, asked.context)
    print(f"  empty-context answer: {evaluator.empty().answer!r}")

    print("\n— Citations: the bottom-up combination counterfactual —")
    bottom_up = rage.combination_counterfactual(
        case.query, context=asked.context, direction=SearchDirection.BOTTOM_UP
    )
    cf = bottom_up.counterfactual
    print(
        f"  minimal retained set reaching {cf.new_answer!r} "
        f"({bottom_up.num_evaluations} LLM calls):"
    )
    for doc_id in sorted(cf.changed_sources):
        doc = asked.context.document(doc_id)
        print(f"    {doc_id}: {doc.text}")

    print("\n— Sensitivity: removing any single cited year —")
    top_down = rage.combination_counterfactual(case.query, context=asked.context)
    cf = top_down.counterfactual
    print(
        f"  removing {cf.changed_sources[0]} alone changes the count to "
        f"{cf.new_answer!r}"
    )

    print("\n— Stability: permutation insights over a random sample —")
    insights = rage.permutation_insights(case.query, context=asked.context, sample_size=30)
    print(render_permutation_insights(insights, max_rows=5))
    if insights.is_stable and not insights.rules:
        print(
            "\n  The LLM comprehends the entire timeline regardless of the "
            "order of its constituent documents."
        )


if __name__ == "__main__":
    main()
