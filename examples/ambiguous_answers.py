#!/usr/bin/env python3
"""Use Case 1 — Ambiguous Answers (paper Section III-B, Figure 2).

Walks the exact narrative from the paper: the LLM picks Roger Federer
for "the best of the Big Three", combination insights expose the
match-wins document as the cause, and a permutation counterfactual shows
the answer flips when that document leaves the first context position.

    python examples/ambiguous_answers.py
"""

from repro import Rage, RageConfig, SearchDirection, SimulatedLLM
from repro.core import ContextEvaluator
from repro.datasets import load_use_case
from repro.viz import render_combination_insights, render_pie


def main() -> None:
    case = load_use_case("big_three")
    rage = Rage.from_corpus(
        case.corpus,
        SimulatedLLM(knowledge=case.knowledge),
        config=RageConfig(k=case.k),
    )

    print("— The user asks —")
    asked = rage.ask(case.query)
    print(f"  {case.query}")
    print(f"  LLM: {asked.answer!r}")
    context = asked.context

    print("\n— The user expected Djokovic (the parametric belief) —")
    evaluator = ContextEvaluator(rage.llm, context)
    print(f"  empty-context answer: {evaluator.empty().answer!r}")

    print("\n— Combination insights (Figure 2) —")
    insights = rage.combination_insights(case.query, context=context)
    print(render_pie(insights.pie()))
    for rule in insights.rules:
        print(f"  rule: {rule.describe()}")

    print("\n— Why Federer? The minimal top-down counterfactual —")
    top_down = rage.combination_counterfactual(case.query, context=context)
    cf = top_down.counterfactual
    print(
        f"  removing {', '.join(cf.changed_sources)} flips "
        f"{cf.baseline_answer!r} -> {cf.new_answer!r} "
        f"({top_down.num_evaluations} LLM call(s))"
    )

    print("\n— And as a citation: the bottom-up counterfactual —")
    bottom_up = rage.combination_counterfactual(
        case.query, context=context, direction=SearchDirection.BOTTOM_UP
    )
    cf = bottom_up.counterfactual
    print(
        f"  retaining only {', '.join(cf.changed_sources)} already yields "
        f"{cf.new_answer!r}"
    )

    print("\n— Does position matter? The permutation counterfactual —")
    permutation = rage.permutation_counterfactual(case.query, context=context)
    cf = permutation.counterfactual
    new_position = cf.perturbation.order.index("bigthree-1-match-wins") + 1
    print(f"  most similar flipping order (tau={cf.tau:.3f}):")
    print(f"    {' > '.join(cf.perturbation.order)}")
    print(
        f"  moving the match-wins document to position {new_position} "
        f"changes the answer to {cf.new_answer!r}"
    )

    print("\n— Full insight table —")
    print(render_combination_insights(insights, max_rows=15))


if __name__ == "__main__":
    main()
